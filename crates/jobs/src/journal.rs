//! Write-ahead journal: the crash-recovery backbone of the job engine.
//!
//! A sweep's progress is recorded as an append-only JSON-lines file under
//! a journal directory (conventionally `results/journal/<run-id>.jsonl`).
//! Each line wraps one [`JournalRecord`] in a crc64 envelope:
//!
//! ```text
//! {"crc64":"<16 hex>","rec":{"t":"job_finished","key":"..."}}
//! ```
//!
//! The checksum is FNV-1a over the canonical serialization of `rec`
//! (which [`crate::Json`] guarantees is a parse/print fixed point), so a
//! record damaged anywhere — torn write, bit rot, hand editing — fails
//! verification.
//!
//! **Durability model.** Records are appended in batches via
//! [`Journal::append_all`]: one `write_all` of all lines followed by one
//! `sync_data`, so a batch is at most one fsync and a crash can only lose
//! records that were never acknowledged. The engine journals
//! `batch_planned` (with the full job list embedded) *before* submitting
//! anything, then one `job_finished`/`job_degraded` per outcome.
//!
//! **Replay invariants.** [`Journal::replay`] tolerates exactly one
//! damaged record, and only at the tail — the signature of a crash
//! mid-append. Damage anywhere else means the file was corrupted at
//! rest, and replay fails loudly with [`JobError::Invalid`] rather than
//! silently resuming from a hole. A replayed journal answers two
//! questions: what was planned (`jobs`, in original order) and what is
//! known complete (`finished`); resume re-runs the full planned list and
//! lets the content-addressed cache absorb the finished prefix, so the
//! cache — not the journal — stays the ground truth for results.

use crate::error::JobError;
use crate::faults::fnv1a64;
use crate::job::Job;
use crate::json::Json;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Basis for journal record checksums (distinct from both the job-key
/// and cache-artifact bases, so no cross-protocol hash collisions).
const JOURNAL_CRC_BASIS: u64 = 0x51ed_270b_7fa5_35c9;

/// One durable fact about a run's progress.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A batch was planned: the full job list, in submission order, so a
    /// resume needs nothing but the journal to reconstruct the sweep.
    BatchPlanned {
        /// The run this journal belongs to.
        run_id: String,
        /// The engine fingerprint of the process that planned the batch
        /// (see [`tdsigma_core::engine_fingerprint`]). Empty on records
        /// written before fingerprinting existed; resume treats empty as
        /// "unknown, warn but proceed" and any other mismatch as a hard
        /// error.
        fingerprint: String,
        /// Every job in the batch, in original order.
        jobs: Vec<Job>,
    },
    /// A job was submitted to the pool (or is about to be).
    JobStarted {
        /// The job's content-addressed key.
        key: String,
    },
    /// A job completed and its report reached the cache.
    JobFinished {
        /// The job's content-addressed key.
        key: String,
    },
    /// A job exhausted its attempts; the error is recorded so a resumed
    /// run (and a post-mortem) can see *why* without the dead process.
    JobDegraded {
        /// The job's content-addressed key.
        key: String,
        /// Display form of the structured error.
        error: String,
        /// Whether the failure class is worth retrying on resume.
        retryable: bool,
    },
    /// A job's remote result was verified against a redundant
    /// recomputation (sampled verification or a hedge cross-check).
    /// A resume must not pay for re-verifying it.
    JobVerified {
        /// The job's content-addressed key.
        key: String,
    },
    /// A `--resume` replayed this journal and continued the run.
    Resumed {
        /// Jobs already complete at resume time.
        completed: u64,
    },
}

impl JournalRecord {
    /// The record's canonical JSON body (the `rec` field of a line).
    pub fn to_json(&self) -> Json {
        let mut obj = Vec::new();
        match self {
            JournalRecord::BatchPlanned {
                run_id,
                fingerprint,
                jobs,
            } => {
                obj.push(("t".into(), Json::Str("batch_planned".into())));
                obj.push(("run_id".into(), Json::Str(run_id.clone())));
                // Emitted only when set, so pre-fingerprint records
                // re-serialize byte-identically and their crc envelopes
                // still verify on replay.
                if !fingerprint.is_empty() {
                    obj.push(("fingerprint".into(), Json::Str(fingerprint.clone())));
                }
                obj.push((
                    "jobs".into(),
                    Json::Arr(jobs.iter().map(Job::to_json).collect()),
                ));
            }
            JournalRecord::JobStarted { key } => {
                obj.push(("t".into(), Json::Str("job_started".into())));
                obj.push(("key".into(), Json::Str(key.clone())));
            }
            JournalRecord::JobFinished { key } => {
                obj.push(("t".into(), Json::Str("job_finished".into())));
                obj.push(("key".into(), Json::Str(key.clone())));
            }
            JournalRecord::JobDegraded {
                key,
                error,
                retryable,
            } => {
                obj.push(("t".into(), Json::Str("job_degraded".into())));
                obj.push(("key".into(), Json::Str(key.clone())));
                obj.push(("error".into(), Json::Str(error.clone())));
                obj.push(("retryable".into(), Json::Bool(*retryable)));
            }
            JournalRecord::JobVerified { key } => {
                obj.push(("t".into(), Json::Str("job_verified".into())));
                obj.push(("key".into(), Json::Str(key.clone())));
            }
            JournalRecord::Resumed { completed } => {
                obj.push(("t".into(), Json::Str("resumed".into())));
                obj.push(("completed".into(), Json::Num(*completed as f64)));
            }
        }
        Json::Obj(obj)
    }

    /// Parses a record body produced by [`JournalRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] on an unknown tag or missing field.
    pub fn from_json(v: &Json) -> Result<Self, JobError> {
        let tag = v
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| JobError::Invalid("journal record missing tag 't'".into()))?;
        let key_of = |v: &Json| -> Result<String, JobError> {
            Ok(v.get("key")
                .and_then(Json::as_str)
                .ok_or_else(|| JobError::Invalid(format!("journal {tag} record missing 'key'")))?
                .to_string())
        };
        match tag {
            "batch_planned" => {
                let run_id = v
                    .get("run_id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| JobError::Invalid("batch_planned missing 'run_id'".into()))?
                    .to_string();
                let fingerprint = v
                    .get("fingerprint")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string();
                let jobs = v
                    .get("jobs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| JobError::Invalid("batch_planned missing 'jobs'".into()))?
                    .iter()
                    .map(Job::from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(JournalRecord::BatchPlanned {
                    run_id,
                    fingerprint,
                    jobs,
                })
            }
            "job_started" => Ok(JournalRecord::JobStarted { key: key_of(v)? }),
            "job_finished" => Ok(JournalRecord::JobFinished { key: key_of(v)? }),
            "job_degraded" => Ok(JournalRecord::JobDegraded {
                key: key_of(v)?,
                error: v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                retryable: v.get("retryable").and_then(Json::as_bool).unwrap_or(false),
            }),
            "job_verified" => Ok(JournalRecord::JobVerified { key: key_of(v)? }),
            "resumed" => Ok(JournalRecord::Resumed {
                completed: v.get("completed").and_then(Json::as_u64).unwrap_or(0),
            }),
            other => Err(JobError::Invalid(format!(
                "unknown journal record tag {other:?}"
            ))),
        }
    }

    /// One journal line: the record body wrapped in its crc envelope,
    /// newline-terminated.
    fn to_line(&self) -> String {
        let rec = self.to_json();
        let body = rec.to_text();
        let crc = fnv1a64(body.as_bytes(), JOURNAL_CRC_BASIS);
        Json::Obj(vec![
            ("crc64".into(), Json::Str(format!("{crc:016x}"))),
            ("rec".into(), rec),
        ])
        .to_text()
            + "\n"
    }
}

/// Parses one journal line and verifies its checksum. The crc is checked
/// against the *re-serialized* parsed body, which is sound because the
/// JSON writer is a parse/print fixed point (see json.rs tests).
fn parse_line(line: &str) -> Result<JournalRecord, JobError> {
    let envelope = Json::parse(line)
        .map_err(|e| JobError::Invalid(format!("unparsable journal line: {e}")))?;
    let stated = envelope
        .get("crc64")
        .and_then(Json::as_str)
        .ok_or_else(|| JobError::Invalid("journal line missing crc64".into()))?;
    let rec = envelope
        .get("rec")
        .ok_or_else(|| JobError::Invalid("journal line missing rec".into()))?;
    let body = rec.to_text();
    let actual = format!("{:016x}", fnv1a64(body.as_bytes(), JOURNAL_CRC_BASIS));
    if stated != actual {
        return Err(JobError::Invalid(format!(
            "journal crc mismatch: line says {stated}, record hashes to {actual}"
        )));
    }
    JournalRecord::from_json(rec)
}

/// Checks that a run id is safe to splice into a filename: non-empty,
/// at most 64 chars, drawn from `[A-Za-z0-9._-]`, and not dot-only (so
/// `..` cannot escape the journal directory).
///
/// # Errors
///
/// Returns [`JobError::Invalid`] naming the offending id.
pub fn validate_run_id(run_id: &str) -> Result<(), JobError> {
    let ok_chars = run_id
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if run_id.is_empty() || run_id.len() > 64 || !ok_chars || run_id.chars().all(|c| c == '.') {
        return Err(JobError::Invalid(format!(
            "invalid run id {run_id:?}: need 1-64 chars from [A-Za-z0-9._-]"
        )));
    }
    Ok(())
}

/// An open, append-only journal for one run.
#[derive(Debug)]
pub struct Journal {
    file: fs::File,
    path: PathBuf,
    run_id: String,
}

impl Journal {
    /// Creates a fresh journal for `run_id` under `dir` (created if
    /// missing). Fails if a journal for this run already exists — a
    /// crashed run must be continued with [`Journal::open_existing`],
    /// never silently overwritten.
    ///
    /// # Errors
    ///
    /// [`JobError::Invalid`] for a bad run id; [`JobError::Io`] if the
    /// directory or file cannot be created (including `AlreadyExists`).
    pub fn create(dir: impl AsRef<Path>, run_id: &str) -> Result<Self, JobError> {
        validate_run_id(run_id)?;
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(|e| JobError::io_at(dir, &e))?;
        let path = journal_path(dir, run_id);
        let file = fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| JobError::io_at(&path, &e))?;
        Ok(Journal {
            file,
            path,
            run_id: run_id.to_string(),
        })
    }

    /// Opens an existing journal for appending (the resume path).
    ///
    /// # Errors
    ///
    /// [`JobError::Invalid`] for a bad run id; [`JobError::Io`] if the
    /// journal file does not exist or cannot be opened.
    pub fn open_existing(dir: impl AsRef<Path>, run_id: &str) -> Result<Self, JobError> {
        validate_run_id(run_id)?;
        let path = journal_path(dir.as_ref(), run_id);
        let file = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| JobError::io_at(&path, &e))?;
        Ok(Journal {
            file,
            path,
            run_id: run_id.to_string(),
        })
    }

    /// The journal file on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run this journal records.
    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    /// Appends one record durably (a one-element [`Journal::append_all`]).
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the write or fsync fails.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JobError> {
        self.append_all(std::slice::from_ref(rec))
    }

    /// Appends a batch of records: one buffered write, one fsync. After
    /// this returns, the records survive process death.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the write or fsync fails. On error
    /// the tail of the file may hold a torn record — exactly the case
    /// replay tolerates.
    pub fn append_all(&mut self, recs: &[JournalRecord]) -> Result<(), JobError> {
        if recs.is_empty() {
            return Ok(());
        }
        let span = tdsigma_obs::span("journal.fsync")
            .attr("records", recs.len().to_string())
            .attr("run_id", self.run_id.clone());
        let mut buf = String::new();
        for rec in recs {
            buf.push_str(&rec.to_line());
        }
        self.file
            .write_all(buf.as_bytes())
            .map_err(|e| JobError::io_at(&self.path, &e))?;
        self.file
            .sync_data()
            .map_err(|e| JobError::io_at(&self.path, &e))?;
        tdsigma_obs::counter("jobs.journal_records").add(recs.len() as u64);
        drop(span);
        Ok(())
    }

    /// Replays a run's journal into a reconciled view of its progress.
    ///
    /// # Errors
    ///
    /// [`JobError::Invalid`] for a bad run id or corruption anywhere but
    /// the final line; [`JobError::Io`] if the file cannot be read.
    pub fn replay(dir: impl AsRef<Path>, run_id: &str) -> Result<JournalReplay, JobError> {
        validate_run_id(run_id)?;
        let path = journal_path(dir.as_ref(), run_id);
        let span = tdsigma_obs::span("journal.replay").attr("run_id", run_id.to_string());
        let text = fs::read_to_string(&path).map_err(|e| JobError::io_at(&path, &e))?;
        let mut replay = JournalReplay {
            run_id: run_id.to_string(),
            fingerprint: String::new(),
            jobs: Vec::new(),
            started: HashSet::new(),
            finished: HashSet::new(),
            verified: HashSet::new(),
            degraded: HashMap::new(),
            resumes: 0,
            records: 0,
            torn_tail: false,
        };
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let last = i + 1 == lines.len();
            let rec = match parse_line(line) {
                Ok(rec) => rec,
                Err(_) if last => {
                    // A damaged *final* record is the expected signature
                    // of a crash mid-append: everything acknowledged by
                    // an fsync is intact above it. Tolerate and count.
                    replay.torn_tail = true;
                    tdsigma_obs::counter("jobs.journal_torn_tail").inc();
                    break;
                }
                Err(e) => {
                    // Mid-file damage is corruption at rest, not a torn
                    // append — refuse to guess what was lost.
                    return Err(JobError::Invalid(format!(
                        "journal {} corrupt at line {} (of {}): {e}",
                        path.display(),
                        i + 1,
                        lines.len()
                    )));
                }
            };
            replay.records += 1;
            match rec {
                JournalRecord::BatchPlanned {
                    jobs, fingerprint, ..
                } => {
                    replay.jobs = jobs;
                    replay.fingerprint = fingerprint;
                }
                JournalRecord::JobStarted { key } => {
                    replay.started.insert(key);
                }
                JournalRecord::JobFinished { key } => {
                    replay.finished.insert(key);
                }
                JournalRecord::JobVerified { key } => {
                    replay.verified.insert(key);
                }
                JournalRecord::JobDegraded { key, error, .. } => {
                    replay.degraded.insert(key, error);
                }
                JournalRecord::Resumed { .. } => replay.resumes += 1,
            }
        }
        drop(span);
        Ok(replay)
    }
}

/// The reconciled state of a run, produced by [`Journal::replay`].
#[derive(Debug, Clone)]
pub struct JournalReplay {
    /// The run id replayed.
    pub run_id: String,
    /// Engine fingerprint recorded by the planning process (empty for
    /// journals that predate fingerprinting).
    pub fingerprint: String,
    /// The planned batch, in original submission order.
    pub jobs: Vec<Job>,
    /// Keys of jobs known to have been submitted.
    pub started: HashSet<String>,
    /// Keys of jobs known complete (report reached the cache).
    pub finished: HashSet<String>,
    /// Keys whose results were already verified against a redundant
    /// recomputation; resume seeds the dispatcher with these so
    /// verification work is never repeated.
    pub verified: HashSet<String>,
    /// Keys that exhausted their attempts, with the recorded error.
    /// Degraded jobs are *not* treated as complete: resume retries them.
    pub degraded: HashMap<String, String>,
    /// How many times this run has already been resumed.
    pub resumes: u64,
    /// Intact records replayed.
    pub records: u64,
    /// Whether the final record was damaged (crash mid-append) and
    /// skipped.
    pub torn_tail: bool,
}

impl JournalReplay {
    /// Planned jobs with no `job_finished` record — the work a resumed
    /// run must still produce (the cache may still absorb some of it).
    pub fn incomplete_jobs(&self) -> Vec<Job> {
        self.jobs
            .iter()
            .filter(|j| !self.finished.contains(&j.key()))
            .cloned()
            .collect()
    }
}

fn journal_path(dir: &Path, run_id: &str) -> PathBuf {
    dir.join(format!("{run_id}.jsonl"))
}

/// Outcome of one [`gc_finished`] pass over a journal directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalGc {
    /// Run ids whose journals (and `.opt.json` side files) were removed.
    pub pruned: Vec<String>,
    /// Journals left in place (unfinished, protected, retained, or
    /// unreadable — GC never guesses).
    pub kept: usize,
}

/// Prunes journals of *finished* runs from `dir`, keeping the journal
/// directory bounded the way the cache's quarantine prune bounds the
/// cache. A run counts as finished only when its replay proves it:
/// a batch plan exists, every planned job has a `job_finished` record,
/// and the tail is not torn. Anything else — unfinished, corrupt,
/// unreadable, foreign files — is kept; deleting evidence is worse than
/// keeping a stale journal.
///
/// The newest `keep_newest` finished journals (by modification time)
/// survive for post-mortems, as does any run id listed in `protect`
/// (conventionally the run that is executing right now). A pruned run
/// also drops its `<run-id>.opt.json` resume token, and each removal
/// bumps the `jobs.journal_pruned` counter.
///
/// # Errors
///
/// Returns [`JobError::Io`] only if the directory itself cannot be
/// listed; per-file read or remove failures just leave that file in
/// place (it will be retried by the next pass).
pub fn gc_finished(
    dir: impl AsRef<Path>,
    keep_newest: usize,
    protect: &[&str],
) -> Result<JournalGc, JobError> {
    let dir = dir.as_ref();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        // A journal directory that was never created holds nothing to GC.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalGc::default()),
        Err(e) => return Err(JobError::io_at(dir, &e)),
    };
    let mut finished: Vec<(String, std::time::SystemTime)> = Vec::new();
    let mut kept = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(run_id) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(|n| n.strip_suffix(".jsonl"))
        else {
            continue; // not a journal (e.g. an .opt.json side file)
        };
        if validate_run_id(run_id).is_err() || protect.contains(&run_id) {
            kept += 1;
            continue;
        }
        let complete = Journal::replay(dir, run_id)
            .map(|r| !r.jobs.is_empty() && !r.torn_tail && r.incomplete_jobs().is_empty())
            .unwrap_or(false);
        if !complete {
            kept += 1;
            continue;
        }
        let modified = entry
            .metadata()
            .and_then(|m| m.modified())
            .unwrap_or(std::time::UNIX_EPOCH);
        finished.push((run_id.to_string(), modified));
    }
    // Newest finished journals survive for post-mortems.
    finished.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut gc = JournalGc {
        pruned: Vec::new(),
        kept: kept + finished.len().min(keep_newest),
    };
    for (run_id, _) in finished.into_iter().skip(keep_newest) {
        if fs::remove_file(journal_path(dir, &run_id)).is_err() {
            gc.kept += 1;
            continue;
        }
        let _ = fs::remove_file(dir.join(format!("{run_id}.opt.json")));
        tdsigma_obs::counter("jobs.journal_pruned").inc();
        gc.pruned.push(run_id);
    }
    gc.pruned.sort();
    Ok(gc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tdsigma_journal_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn two_jobs() -> Vec<Job> {
        vec![Job::sim(40.0, 750e6, 5e6), Job::sim(28.0, 1.6e9, 10e6)]
    }

    #[test]
    fn records_roundtrip_through_lines() {
        let jobs = two_jobs();
        let recs = vec![
            JournalRecord::BatchPlanned {
                run_id: "r1".into(),
                fingerprint: "feedfacecafebeef".into(),
                jobs: jobs.clone(),
            },
            JournalRecord::BatchPlanned {
                run_id: "r1-prefingerprint".into(),
                fingerprint: String::new(),
                jobs: jobs.clone(),
            },
            JournalRecord::JobStarted { key: jobs[0].key() },
            JournalRecord::JobFinished { key: jobs[0].key() },
            JournalRecord::JobVerified { key: jobs[0].key() },
            JournalRecord::JobDegraded {
                key: jobs[1].key(),
                error: "transient failure: injected".into(),
                retryable: true,
            },
            JournalRecord::Resumed { completed: 1 },
        ];
        for rec in &recs {
            let line = rec.to_line();
            let back = parse_line(line.trim_end()).expect("line parses");
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn pre_fingerprint_batch_planned_lines_still_verify() {
        // A plan with no fingerprint serializes without the field at
        // all, so journals written by pre-fingerprint binaries and by
        // this one are byte-compatible and crc-stable in both
        // directions.
        let rec = JournalRecord::BatchPlanned {
            run_id: "old".into(),
            fingerprint: String::new(),
            jobs: two_jobs(),
        };
        let line = rec.to_line();
        assert!(
            !line.contains("fingerprint"),
            "empty fingerprint must not be emitted: {line}"
        );
        match parse_line(line.trim_end()).expect("old-format line verifies") {
            JournalRecord::BatchPlanned { fingerprint, .. } => {
                assert_eq!(fingerprint, "", "missing field reads back empty");
            }
            other => panic!("wrong record: {other:?}"),
        }
    }

    #[test]
    fn append_replay_reconstructs_progress() {
        let dir = temp_dir("roundtrip");
        let jobs = two_jobs();
        let mut j = Journal::create(&dir, "run-a").unwrap();
        j.append_all(&[
            JournalRecord::BatchPlanned {
                run_id: "run-a".into(),
                fingerprint: "0011223344556677".into(),
                jobs: jobs.clone(),
            },
            JournalRecord::JobStarted { key: jobs[0].key() },
            JournalRecord::JobStarted { key: jobs[1].key() },
        ])
        .unwrap();
        j.append(&JournalRecord::JobFinished { key: jobs[0].key() })
            .unwrap();

        let replay = Journal::replay(&dir, "run-a").unwrap();
        assert_eq!(replay.jobs, jobs);
        assert_eq!(replay.fingerprint, "0011223344556677");
        assert_eq!(replay.started.len(), 2);
        assert!(replay.finished.contains(&jobs[0].key()));
        assert!(!replay.torn_tail);
        let incomplete = replay.incomplete_jobs();
        assert_eq!(incomplete, vec![jobs[1].clone()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verified_records_replay_into_the_verified_set() {
        let dir = temp_dir("verified");
        let jobs = two_jobs();
        let mut j = Journal::create(&dir, "run-v").unwrap();
        j.append_all(&[
            JournalRecord::BatchPlanned {
                run_id: "run-v".into(),
                fingerprint: String::new(),
                jobs: jobs.clone(),
            },
            JournalRecord::JobFinished { key: jobs[0].key() },
            JournalRecord::JobVerified { key: jobs[0].key() },
        ])
        .unwrap();
        let replay = Journal::replay(&dir, "run-v").unwrap();
        assert!(replay.verified.contains(&jobs[0].key()));
        assert!(!replay.verified.contains(&jobs[1].key()));
        assert_eq!(
            replay.incomplete_jobs(),
            vec![jobs[1].clone()],
            "verification records must not affect completion accounting"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_record_is_tolerated() {
        let dir = temp_dir("torn");
        let jobs = two_jobs();
        let mut j = Journal::create(&dir, "run-torn").unwrap();
        j.append_all(&[
            JournalRecord::BatchPlanned {
                run_id: "run-torn".into(),
                fingerprint: String::new(),
                jobs: jobs.clone(),
            },
            JournalRecord::JobFinished { key: jobs[0].key() },
        ])
        .unwrap();
        // Simulate a crash mid-append: half a record, no newline.
        let path = j.path().to_path_buf();
        let mut raw = fs::OpenOptions::new().append(true).open(&path).unwrap();
        raw.write_all(b"{\"crc64\":\"0123456789abcdef\",\"rec\":{\"t\":\"job_fin")
            .unwrap();
        drop(raw);

        let replay = Journal::replay(&dir, "run-torn").unwrap();
        assert!(replay.torn_tail, "torn tail must be flagged");
        assert_eq!(replay.records, 2, "intact prefix fully replayed");
        assert!(replay.finished.contains(&jobs[0].key()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_fails_loudly() {
        let dir = temp_dir("midfile");
        let jobs = two_jobs();
        let mut j = Journal::create(&dir, "run-mid").unwrap();
        for key in [jobs[0].key(), jobs[1].key()] {
            j.append(&JournalRecord::JobFinished { key }).unwrap();
        }
        let path = j.path().to_path_buf();
        let text = fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // Flip a hex digit inside the first record's key: still valid
        // JSON, but the crc no longer matches.
        lines[0] = lines[0].replacen(&jobs[0].key()[..8], "00000000", 1);
        fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = Journal::replay(&dir, "run-mid").expect_err("mid-file damage must fail");
        assert!(
            matches!(err, JobError::Invalid(_)),
            "expected Invalid, got {err:?}"
        );
        assert!(err.to_string().contains("line 1"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_run() {
        let dir = temp_dir("clobber");
        let _first = Journal::create(&dir, "run-x").unwrap();
        let err = Journal::create(&dir, "run-x").expect_err("second create must fail");
        match err {
            JobError::Io { kind, .. } => {
                assert_eq!(kind, std::io::ErrorKind::AlreadyExists)
            }
            other => panic!("expected Io/AlreadyExists, got {other:?}"),
        }
        // But the crashed run can be reopened for append.
        Journal::open_existing(&dir, "run-x").expect("reopen for append");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_run_ids_are_rejected() {
        for bad in ["", "..", "a/b", "a\\b", "x".repeat(65).as_str(), "run id"] {
            assert!(
                validate_run_id(bad).is_err(),
                "run id {bad:?} must be rejected"
            );
        }
        for good in ["r1", "sweep-1700000000000-42", "a.b_c-d"] {
            assert!(validate_run_id(good).is_ok(), "run id {good:?} must pass");
        }
    }

    #[test]
    fn empty_append_is_a_noop() {
        let dir = temp_dir("empty");
        let mut j = Journal::create(&dir, "run-e").unwrap();
        j.append_all(&[]).unwrap();
        assert_eq!(fs::read_to_string(j.path()).unwrap(), "");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Writes a journal for `run_id` with both jobs planned and
    /// `finished_of_two` of them recorded finished.
    fn write_run(dir: &Path, run_id: &str, finished_of_two: usize) {
        let jobs = two_jobs();
        let mut j = Journal::create(dir, run_id).unwrap();
        let mut recs = vec![JournalRecord::BatchPlanned {
            run_id: run_id.into(),
            fingerprint: "1122334455667788".into(),
            jobs: jobs.clone(),
        }];
        for job in jobs.iter().take(finished_of_two) {
            recs.push(JournalRecord::JobFinished { key: job.key() });
        }
        j.append_all(&recs).unwrap();
    }

    #[test]
    fn gc_prunes_only_provably_finished_runs() {
        let dir = temp_dir("gc");
        write_run(&dir, "done-1", 2);
        write_run(&dir, "done-2", 2);
        write_run(&dir, "partial", 1);
        write_run(&dir, "current", 2);
        fs::write(dir.join("done-1.opt.json"), "{}").unwrap();
        fs::write(dir.join("stray.txt"), "not a journal").unwrap();

        let gc = gc_finished(&dir, 0, &["current"]).unwrap();
        assert_eq!(gc.pruned, vec!["done-1".to_string(), "done-2".to_string()]);
        assert!(!journal_path(&dir, "done-1").exists());
        assert!(
            !dir.join("done-1.opt.json").exists(),
            "resume token goes with its journal"
        );
        assert!(journal_path(&dir, "partial").exists(), "unfinished kept");
        assert!(journal_path(&dir, "current").exists(), "protected kept");
        assert!(dir.join("stray.txt").exists(), "foreign files untouched");
        assert_eq!(gc.kept, 2);

        // Idempotent: a second pass finds nothing new to prune.
        let again = gc_finished(&dir, 0, &["current"]).unwrap();
        assert!(again.pruned.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_retains_the_newest_finished_journals() {
        let dir = temp_dir("gc_retain");
        for i in 0..4 {
            write_run(&dir, &format!("run-{i}"), 2);
        }
        let gc = gc_finished(&dir, 3, &[]).unwrap();
        assert_eq!(gc.pruned.len(), 1, "only the overflow goes: {gc:?}");
        assert_eq!(gc.kept, 3);
        let survivors = fs::read_dir(&dir).unwrap().count();
        assert_eq!(survivors, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_corrupt_and_torn_journals() {
        let dir = temp_dir("gc_corrupt");
        write_run(&dir, "torn", 2);
        let mut raw = fs::OpenOptions::new()
            .append(true)
            .open(journal_path(&dir, "torn"))
            .unwrap();
        raw.write_all(b"{\"crc64\":\"dead").unwrap();
        drop(raw);
        fs::write(journal_path(&dir, "garbage"), "not json at all\n").unwrap();

        let gc = gc_finished(&dir, 0, &[]).unwrap();
        assert!(gc.pruned.is_empty(), "evidence is never deleted: {gc:?}");
        assert_eq!(gc.kept, 2);

        let missing = gc_finished(dir.join("never-created"), 0, &[]).unwrap();
        assert_eq!(missing, JournalGc::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_jobs_are_retried_on_resume() {
        let dir = temp_dir("degraded");
        let jobs = two_jobs();
        let mut j = Journal::create(&dir, "run-d").unwrap();
        j.append_all(&[
            JournalRecord::BatchPlanned {
                run_id: "run-d".into(),
                fingerprint: String::new(),
                jobs: jobs.clone(),
            },
            JournalRecord::JobFinished { key: jobs[0].key() },
            JournalRecord::JobDegraded {
                key: jobs[1].key(),
                error: "job failed after 3 attempt(s): injected".into(),
                retryable: true,
            },
        ])
        .unwrap();
        let replay = Journal::replay(&dir, "run-d").unwrap();
        assert_eq!(replay.degraded.len(), 1);
        assert_eq!(
            replay.incomplete_jobs(),
            vec![jobs[1].clone()],
            "degraded jobs stay incomplete so resume retries them"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
