//! Content-addressed result cache: in-memory map + on-disk JSON store.
//!
//! A report is filed under [`crate::Job::key`] — a stable hash of the
//! canonicalized job parameters — so any job that was ever executed with
//! the same parameters is answered without running a flow. The disk tier
//! (one `<key>.json` artifact per result, conventionally under
//! `results/cache/`) survives process restarts, which is what makes
//! re-running a whole sweep near-free.
//!
//! **Corruption is a defined state, not undefined behavior.** Every
//! artifact carries a `crc64:` trailer (FNV-1a over the report line); an
//! artifact that is unreadable, unparsable, checksum-mismatched, or filed
//! under the wrong key is **quarantined** — renamed to
//! `<key>.json.quarantine`, counted (see [`ResultCache::quarantined`]),
//! and treated as a miss so the job recomputes. Quarantined files are
//! never read back: lookups only ever open `<key>.json`.

use crate::error::JobError;
use crate::faults::{fnv1a64, FaultPlan};
use crate::report::JobReport;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Basis for artifact checksums (distinct from the job-key bases so a
/// key can never masquerade as its own checksum).
const CRC_BASIS: u64 = 0x6c62_272e_07bb_0142;

/// How many quarantined artifacts to retain for post-mortem inspection.
/// Anything older is pruned when a disk cache is opened, so a long-lived
/// cache directory with recurring corruption cannot grow without bound.
const QUARANTINE_RETAIN: usize = 32;

/// A two-tier (memory + optional disk) result cache. All methods take
/// `&self`; the cache is safe to share across worker and server threads.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<HashMap<String, JobReport>>,
    dir: Option<PathBuf>,
    quarantined: AtomicUsize,
    quarantine_pruned: usize,
    faults: FaultPlan,
}

impl ResultCache {
    /// A purely in-memory cache (dies with the process).
    pub fn in_memory() -> Self {
        ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            quarantined: AtomicUsize::new(0),
            quarantine_pruned: 0,
            faults: FaultPlan::none(),
        }
    }

    /// A cache backed by a directory of `<key>.json` artifacts; the
    /// directory is created if missing. Opening the cache also prunes
    /// accumulated `.quarantine` files down to the newest
    /// `QUARANTINE_RETAIN` (pruning is best-effort and never fails the
    /// open).
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the directory cannot be created.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Result<Self, JobError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| JobError::io_at(&dir, &e))?;
        let quarantine_pruned = prune_quarantine(&dir, QUARANTINE_RETAIN);
        Ok(ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir),
            quarantined: AtomicUsize::new(0),
            quarantine_pruned,
            faults: FaultPlan::none(),
        })
    }

    /// Installs a fault plan that may corrupt artifacts as they are
    /// written (exercises the quarantine path end to end).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The disk directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Artifacts found corrupt and quarantined over this cache's
    /// lifetime.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::SeqCst)
    }

    /// Stale `.quarantine` files removed when this cache was opened.
    pub fn quarantine_pruned(&self) -> usize {
        self.quarantine_pruned
    }

    /// Looks up a result by job key: memory first, then disk (a disk hit
    /// is promoted into memory). A corrupt disk artifact is quarantined
    /// and reported as a miss — corruption degrades to recomputation,
    /// never to a wrong answer or an aborted batch.
    pub fn get(&self, key: &str) -> Option<JobReport> {
        if let Some(hit) = self.mem.lock().expect("cache lock").get(key) {
            return Some(hit.clone());
        }
        let path = self.artifact_path(key)?;
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                // Exists but unreadable: same treatment as corrupt.
                self.quarantine(&path);
                return None;
            }
        };
        let report = match parse_artifact(&text, key) {
            Ok(report) => report,
            Err(_) => {
                self.quarantine(&path);
                return None;
            }
        };
        self.mem
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), report.clone());
        Some(report)
    }

    /// Cheap presence probe: true if `key` is in the memory tier or an
    /// artifact file exists on disk. Unlike [`ResultCache::get`] this
    /// never reads, parses, quarantines or promotes — it is the
    /// dry-run/planning primitive, so a preview of a 10k-job sweep costs
    /// 10k `stat` calls, not 10k artifact parses. A corrupt artifact
    /// therefore counts as present here and will only be quarantined
    /// (and re-executed) by the real run.
    pub fn contains(&self, key: &str) -> bool {
        if self.mem.lock().expect("cache lock").contains_key(key) {
            return true;
        }
        self.artifact_path(key).is_some_and(|p| p.exists())
    }

    /// Stores a result under its own key, in memory and (if configured)
    /// on disk. The disk write is atomic (temp file + rename) so a
    /// concurrent reader never observes a torn artifact.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the disk write fails; the in-memory
    /// tier is updated regardless.
    pub fn put(&self, report: &JobReport) -> Result<(), JobError> {
        self.mem
            .lock()
            .expect("cache lock")
            .insert(report.key.clone(), report.clone());
        if let Some(path) = self.artifact_path(&report.key) {
            let intact = artifact_text(report);
            let bytes = self
                .faults
                .corrupt_artifact(&report.key, &intact)
                .unwrap_or(intact);
            let tmp = path.with_extension("json.tmp");
            fs::write(&tmp, bytes).map_err(|e| JobError::io_at(&tmp, &e))?;
            fs::rename(&tmp, &path).map_err(|e| JobError::io_at(&path, &e))?;
        }
        Ok(())
    }

    /// Moves a damaged artifact aside as `<name>.quarantine` (never
    /// consulted by lookups) and counts it. Best-effort: if the rename
    /// fails the file is removed so it cannot be re-read either way.
    fn quarantine(&self, path: &Path) {
        let mut target = path.as_os_str().to_owned();
        target.push(".quarantine");
        if fs::rename(path, PathBuf::from(target)).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::SeqCst);
        tdsigma_obs::counter("jobs.cache_quarantined").inc();
        if tdsigma_obs::tracing_enabled() {
            tdsigma_obs::event(
                "cache.quarantine",
                &[("artifact", path.display().to_string())],
            );
        }
    }

    /// Number of results in the in-memory tier.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").len()
    }

    /// True if the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn artifact_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are hex strings produced by `Job::key`; refuse anything
        // else so a hostile serve request cannot traverse paths.
        if !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }
}

/// Removes all but the newest `retain` quarantined artifacts from `dir`.
/// Ordering is by (mtime, name) so files with identical timestamps still
/// prune deterministically. Best-effort: an unreadable directory or a
/// failed removal just prunes less.
fn prune_quarantine(dir: &Path, retain: usize) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut stale: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            let is_quarantine = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".quarantine"));
            if !is_quarantine {
                return None;
            }
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, path))
        })
        .collect();
    if stale.len() <= retain {
        return 0;
    }
    stale.sort(); // oldest first; (mtime, path) breaks timestamp ties
    let doomed = stale.len() - retain;
    let mut pruned = 0usize;
    for (_, path) in stale.into_iter().take(doomed) {
        if fs::remove_file(&path).is_ok() {
            pruned += 1;
        }
    }
    if pruned > 0 {
        tdsigma_obs::counter("jobs.cache_quarantine_pruned").add(pruned as u64);
        if tdsigma_obs::tracing_enabled() {
            tdsigma_obs::event(
                "cache.quarantine_prune",
                &[
                    ("dir", dir.display().to_string()),
                    ("pruned", pruned.to_string()),
                ],
            );
        }
    }
    pruned
}

/// Serializes one artifact: the report line followed by its checksum
/// trailer.
fn artifact_text(report: &JobReport) -> String {
    let line = report.to_text();
    let crc = fnv1a64(line.as_bytes(), CRC_BASIS);
    format!("{line}\ncrc64:{crc:016x}\n")
}

/// Parses and verifies one artifact. Checksum-less single-line files
/// (the pre-checksum format) are still accepted if they parse and carry
/// the right key, so existing caches keep working.
fn parse_artifact(text: &str, key: &str) -> Result<JobReport, JobError> {
    let mut lines = text.lines();
    let line = lines
        .next()
        .ok_or_else(|| JobError::Invalid("empty artifact".into()))?;
    if let Some(trailer) = lines.next() {
        let stated = trailer
            .strip_prefix("crc64:")
            .ok_or_else(|| JobError::Invalid(format!("malformed checksum trailer {trailer:?}")))?;
        let actual = format!("{:016x}", fnv1a64(line.as_bytes(), CRC_BASIS));
        if stated != actual {
            return Err(JobError::Invalid(format!(
                "checksum mismatch: artifact says {stated}, content hashes to {actual}"
            )));
        }
    }
    let report = JobReport::from_text(line)?;
    // Never serve an artifact filed under the wrong key (e.g. a
    // hand-renamed file): the report embeds its own address.
    if report.key != key {
        return Err(JobError::Invalid(format!(
            "artifact filed under {key} but reports key {}",
            report.key
        )));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn report_for(job: &Job) -> JobReport {
        JobReport {
            key: job.key(),
            job: job.clone(),
            fin_hz: 1e6,
            sndr_db: 68.5,
            enob: 11.1,
            power_mw: None,
            digital_fraction: None,
            area_mm2: None,
            fom_fj: None,
            timing_slack_ps: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tdsigma_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_roundtrip() {
        let cache = ResultCache::in_memory();
        let job = Job::sim(40.0, 750e6, 5e6);
        assert!(cache.get(&job.key()).is_none());
        cache.put(&report_for(&job)).unwrap();
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_survives_cache_instance() {
        let dir = temp_dir("persist");
        let job = Job::sim(40.0, 750e6, 5e6);
        {
            let cache = ResultCache::with_disk(&dir).unwrap();
            cache.put(&report_for(&job)).unwrap();
        }
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(fresh.len(), 0, "memory tier starts cold");
        let hit = fresh.get(&job.key()).expect("disk hit");
        assert_eq!(hit.key, job.key());
        assert_eq!(fresh.len(), 1, "disk hit promoted to memory");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_artifact_is_ignored() {
        let dir = temp_dir("mismatch");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        cache.put(&report_for(&job)).unwrap();
        // File the artifact under a different (valid-hex) key.
        let other_key = "deadbeef".repeat(4);
        fs::copy(
            dir.join(format!("{}.json", job.key())),
            dir.join(format!("{other_key}.json")),
        )
        .unwrap();
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&other_key).is_none(), "key mismatch must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_quarantined_and_counted() {
        let dir = temp_dir("quarantine");
        let job = Job::sim(40.0, 750e6, 5e6);
        let key = job.key();
        {
            let cache = ResultCache::with_disk(&dir).unwrap();
            cache.put(&report_for(&job)).unwrap();
        }
        // Truncate the artifact mid-record.
        let path = dir.join(format!("{key}.json"));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 3]).unwrap();

        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&key).is_none(), "corrupt artifact must miss");
        assert_eq!(fresh.quarantined(), 1);
        assert!(!path.exists(), "damaged file must be moved aside");
        assert!(
            dir.join(format!("{key}.json.quarantine")).exists(),
            "quarantine file must carry the .quarantine suffix"
        );
        // The quarantined bytes are never consulted again: a re-put then
        // a fresh lookup serves the new, intact artifact.
        fresh.put(&report_for(&job)).unwrap();
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.get(&key).unwrap().sndr_db, 68.5);
        assert_eq!(again.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_detects_silent_bit_damage() {
        let dir = temp_dir("bitrot");
        let job = Job::sim(40.0, 750e6, 5e6);
        let cache = ResultCache::with_disk(&dir).unwrap();
        cache.put(&report_for(&job)).unwrap();
        // Flip one digit inside the JSON so it still parses and still
        // carries the right key — only the checksum can catch this.
        let path = dir.join(format!("{}.json", job.key()));
        let text = fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("68.5", "68.6", 1);
        assert_ne!(text, damaged, "test must actually flip a value");
        fs::write(&path, damaged).unwrap();

        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&job.key()).is_none(), "bit damage must miss");
        assert_eq!(fresh.quarantined(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_checksum_less_artifacts_still_hit() {
        let dir = temp_dir("legacy");
        let job = Job::sim(40.0, 750e6, 5e6);
        let report = report_for(&job);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(format!("{}.json", job.key())),
            report.to_text() + "\n",
        )
        .unwrap();
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        assert_eq!(cache.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_corruption_round_trips_through_quarantine() {
        let dir = temp_dir("faulty_writes");
        let always_corrupt = FaultPlan {
            seed: 5,
            corrupt_artifact_permille: 1000,
            ..FaultPlan::default()
        };
        let job = Job::sim(40.0, 750e6, 5e6);
        {
            let cache = ResultCache::with_disk(&dir)
                .unwrap()
                .with_faults(always_corrupt);
            cache.put(&report_for(&job)).unwrap();
            // The memory tier keeps the good copy; only the disk lies.
            assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        }
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(
            fresh.get(&job.key()).is_none(),
            "corrupted write must not come back as a hit"
        );
        assert_eq!(fresh.quarantined(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_backlog_is_pruned_to_retention_on_open() {
        let dir = temp_dir("prune");
        fs::create_dir_all(&dir).unwrap();
        let total = QUARANTINE_RETAIN + 5;
        for i in 0..total {
            fs::write(dir.join(format!("{i:032x}.json.quarantine")), "junk").unwrap();
        }
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(cache.quarantine_pruned(), 5);
        let remaining = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().ends_with(".quarantine"))
            .count();
        assert_eq!(remaining, QUARANTINE_RETAIN);
        // A second open has nothing left to prune.
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.quarantine_pruned(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failure_from_tmp_write_is_structured_not_a_panic() {
        let dir = temp_dir("tmp_collision");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        // Occupy the tmp-file path with a directory: fs::write on it
        // fails with a real OS error regardless of privileges (even as
        // root, unlike a chmod-based read-only test).
        let tmp = dir.join(format!("{}.json.tmp", job.key()));
        fs::create_dir_all(&tmp).unwrap();
        let err = cache.put(&report_for(&job)).expect_err("write must fail");
        match &err {
            JobError::Io { path, .. } => {
                let p = path.as_deref().expect("error names the failing path");
                assert!(p.ends_with(".json.tmp"), "unexpected path {p}");
            }
            other => panic!("expected structured Io error, got {other:?}"),
        }
        // The memory tier was updated before the disk write: the result
        // is merely uncached, not lost.
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failure_from_rename_is_structured_not_a_panic() {
        let dir = temp_dir("rename_collision");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        // Occupy the final artifact path with a non-empty directory so
        // the tmp write succeeds but the rename over it cannot.
        let path = dir.join(format!("{}.json", job.key()));
        fs::create_dir_all(path.join("occupied")).unwrap();
        let err = cache.put(&report_for(&job)).expect_err("rename must fail");
        match &err {
            JobError::Io { path: p, .. } => {
                let p = p.as_deref().expect("error names the failing path");
                assert!(p.ends_with(".json"), "unexpected path {p}");
            }
            other => panic!("expected structured Io error, got {other:?}"),
        }
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_cache_dir_returns_structured_error() {
        // chmod-based read-only dirs don't bind as root (CI containers
        // often are); fall back to asserting the error shape only when
        // the OS actually enforces the mode.
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let dir = temp_dir("readonly");
            let cache = ResultCache::with_disk(&dir).unwrap();
            fs::set_permissions(&dir, fs::Permissions::from_mode(0o555)).unwrap();
            let job = Job::sim(40.0, 750e6, 5e6);
            let outcome = cache.put(&report_for(&job));
            fs::set_permissions(&dir, fs::Permissions::from_mode(0o755)).unwrap();
            match outcome {
                Err(JobError::Io { kind, path, .. }) => {
                    assert_eq!(kind, std::io::ErrorKind::PermissionDenied);
                    assert!(path.is_some(), "error must name the failing path");
                }
                Err(other) => panic!("expected Io error, got {other:?}"),
                // Running as root: the kernel ignores the mode bits and
                // the write goes through. Nothing to assert beyond "no
                // panic" — the collision tests above cover the error
                // shape deterministically.
                Ok(()) => {}
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn hostile_keys_never_touch_disk() {
        let dir = temp_dir("hostile");
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert!(cache.get("../../etc/passwd").is_none());
        assert!(cache.get("a/b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
