//! Content-addressed result cache: in-memory map + on-disk JSON store.
//!
//! A report is filed under [`crate::Job::key`] — a stable hash of the
//! canonicalized job parameters — so any job that was ever executed with
//! the same parameters is answered without running a flow. The disk tier
//! (one `<key>.json` artifact per result, conventionally under
//! `results/cache/`) survives process restarts, which is what makes
//! re-running a whole sweep near-free.

use crate::error::JobError;
use crate::report::JobReport;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A two-tier (memory + optional disk) result cache. All methods take
/// `&self`; the cache is safe to share across worker and server threads.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<HashMap<String, JobReport>>,
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// A purely in-memory cache (dies with the process).
    pub fn in_memory() -> Self {
        ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
        }
    }

    /// A cache backed by a directory of `<key>.json` artifacts; the
    /// directory is created if missing.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the directory cannot be created.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Result<Self, JobError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir),
        })
    }

    /// The disk directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Looks up a result by job key: memory first, then disk (a disk hit
    /// is promoted into memory).
    pub fn get(&self, key: &str) -> Option<JobReport> {
        if let Some(hit) = self.mem.lock().expect("cache lock").get(key) {
            return Some(hit.clone());
        }
        let path = self.artifact_path(key)?;
        let text = fs::read_to_string(path).ok()?;
        let report = JobReport::from_text(&text).ok()?;
        // Never serve an artifact filed under the wrong key (e.g. a
        // hand-renamed file): the report embeds its own address.
        if report.key != key {
            return None;
        }
        self.mem
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), report.clone());
        Some(report)
    }

    /// Stores a result under its own key, in memory and (if configured)
    /// on disk. The disk write is atomic (temp file + rename) so a
    /// concurrent reader never observes a torn artifact.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the disk write fails; the in-memory
    /// tier is updated regardless.
    pub fn put(&self, report: &JobReport) -> Result<(), JobError> {
        self.mem
            .lock()
            .expect("cache lock")
            .insert(report.key.clone(), report.clone());
        if let Some(path) = self.artifact_path(&report.key) {
            let tmp = path.with_extension("json.tmp");
            fs::write(&tmp, report.to_text() + "\n")?;
            fs::rename(&tmp, &path)?;
        }
        Ok(())
    }

    /// Number of results in the in-memory tier.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").len()
    }

    /// True if the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn artifact_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are hex strings produced by `Job::key`; refuse anything
        // else so a hostile serve request cannot traverse paths.
        if !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn report_for(job: &Job) -> JobReport {
        JobReport {
            key: job.key(),
            job: job.clone(),
            fin_hz: 1e6,
            sndr_db: 68.5,
            enob: 11.1,
            power_mw: None,
            digital_fraction: None,
            area_mm2: None,
            fom_fj: None,
            timing_slack_ps: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tdsigma_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_roundtrip() {
        let cache = ResultCache::in_memory();
        let job = Job::sim(40.0, 750e6, 5e6);
        assert!(cache.get(&job.key()).is_none());
        cache.put(&report_for(&job)).unwrap();
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_survives_cache_instance() {
        let dir = temp_dir("persist");
        let job = Job::sim(40.0, 750e6, 5e6);
        {
            let cache = ResultCache::with_disk(&dir).unwrap();
            cache.put(&report_for(&job)).unwrap();
        }
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(fresh.len(), 0, "memory tier starts cold");
        let hit = fresh.get(&job.key()).expect("disk hit");
        assert_eq!(hit.key, job.key());
        assert_eq!(fresh.len(), 1, "disk hit promoted to memory");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_artifact_is_ignored() {
        let dir = temp_dir("mismatch");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        cache.put(&report_for(&job)).unwrap();
        // File the artifact under a different (valid-hex) key.
        let other_key = "deadbeef".repeat(4);
        fs::copy(
            dir.join(format!("{}.json", job.key())),
            dir.join(format!("{other_key}.json")),
        )
        .unwrap();
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&other_key).is_none(), "key mismatch must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_never_touch_disk() {
        let dir = temp_dir("hostile");
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert!(cache.get("../../etc/passwd").is_none());
        assert!(cache.get("a/b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
