//! Content-addressed result cache: in-memory map + on-disk JSON store.
//!
//! A report is filed under [`crate::Job::key`] — a stable hash of the
//! canonicalized job parameters — so any job that was ever executed with
//! the same parameters is answered without running a flow. The disk tier
//! (one `<key>.json` artifact per result, conventionally under
//! `results/cache/`) survives process restarts, which is what makes
//! re-running a whole sweep near-free.
//!
//! **Corruption is a defined state, not undefined behavior.** Every
//! artifact carries a `crc64:` trailer (FNV-1a over the report line); an
//! artifact that is unreadable, unparsable, checksum-mismatched, or filed
//! under the wrong key is **quarantined** — renamed to
//! `<key>.json.quarantine`, counted (see [`ResultCache::quarantined`]),
//! and treated as a miss so the job recomputes. Quarantined files are
//! never read back: lookups only ever open `<key>.json`.
//!
//! **Version skew is a defined state too.** The trailer also stamps the
//! [engine fingerprint](tdsigma_core::fingerprint) of the binary that
//! computed the result. A key collides across engine versions by design
//! (it hashes job parameters only), so without the stamp a warm cache
//! silently replays numbers from an older engine. An artifact whose
//! stamp does not match this process is **demoted** to the `stale/`
//! tier — moved to `<dir>/stale/<key>.json`, counted (see
//! [`ResultCache::stale`]), reported as a miss, and never replayed.
//! Unstamped artifacts from the pre-checksum era are quarantined
//! outright (counted separately, see [`ResultCache::legacy_rejected`]):
//! with no checksum there is nothing to trust. `tdsigma cache
//! stats|scrub` ([`ResultCache::inspect`], [`ResultCache::scrub`])
//! inventory and prune both tiers.

use crate::error::JobError;
use crate::faults::{fnv1a64, FaultPlan};
use crate::report::JobReport;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use tdsigma_core::engine_fingerprint;

/// Basis for artifact checksums (distinct from the job-key bases so a
/// key can never masquerade as its own checksum).
const CRC_BASIS: u64 = 0x6c62_272e_07bb_0142;

/// Subdirectory where artifacts stamped by a different engine
/// fingerprint are demoted. Kept (not deleted) so an operator can roll
/// the binary back and `mv` them home; `tdsigma cache scrub` prunes.
const STALE_DIR: &str = "stale";

/// How many quarantined artifacts to retain for post-mortem inspection.
/// Anything older is pruned when a disk cache is opened, so a long-lived
/// cache directory with recurring corruption cannot grow without bound.
const QUARANTINE_RETAIN: usize = 32;

/// How many demoted `stale/` artifacts to retain for rollback recovery.
/// Like the quarantine tier, anything older is pruned on open: a fleet
/// that rolls its binary repeatedly would otherwise re-demote the whole
/// cache on every version flip and grow `stale/` without bound.
const STALE_RETAIN: usize = 32;

/// A two-tier (memory + optional disk) result cache. All methods take
/// `&self`; the cache is safe to share across worker and server threads.
#[derive(Debug)]
pub struct ResultCache {
    mem: Mutex<HashMap<String, JobReport>>,
    dir: Option<PathBuf>,
    quarantined: AtomicUsize,
    stale: AtomicUsize,
    legacy_rejected: AtomicUsize,
    quarantine_pruned: usize,
    stale_pruned: usize,
    faults: FaultPlan,
    fingerprint: String,
}

impl ResultCache {
    /// A purely in-memory cache (dies with the process).
    pub fn in_memory() -> Self {
        ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: None,
            quarantined: AtomicUsize::new(0),
            stale: AtomicUsize::new(0),
            legacy_rejected: AtomicUsize::new(0),
            quarantine_pruned: 0,
            stale_pruned: 0,
            faults: FaultPlan::none(),
            fingerprint: engine_fingerprint().to_string(),
        }
    }

    /// A cache backed by a directory of `<key>.json` artifacts; the
    /// directory is created if missing. Opening the cache also prunes
    /// accumulated `.quarantine` files down to the newest
    /// `QUARANTINE_RETAIN` and demoted `stale/` artifacts down to the
    /// newest `STALE_RETAIN` (pruning is best-effort and never fails
    /// the open).
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the directory cannot be created.
    pub fn with_disk(dir: impl Into<PathBuf>) -> Result<Self, JobError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| JobError::io_at(&dir, &e))?;
        let quarantine_pruned = prune_quarantine(&dir, QUARANTINE_RETAIN);
        let stale_pruned = prune_stale(&dir.join(STALE_DIR), STALE_RETAIN);
        Ok(ResultCache {
            mem: Mutex::new(HashMap::new()),
            dir: Some(dir),
            quarantined: AtomicUsize::new(0),
            stale: AtomicUsize::new(0),
            legacy_rejected: AtomicUsize::new(0),
            quarantine_pruned,
            stale_pruned,
            faults: FaultPlan::none(),
            fingerprint: engine_fingerprint().to_string(),
        })
    }

    /// Installs a fault plan that may corrupt artifacts as they are
    /// written (exercises the quarantine path end to end).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the engine fingerprint this cache stamps and verifies.
    /// Tests use it to stage a cache "written by a different binary"
    /// without spawning one; production code should keep the default
    /// ([`tdsigma_core::engine_fingerprint`]).
    #[must_use]
    pub fn with_fingerprint(mut self, fingerprint: impl Into<String>) -> Self {
        self.fingerprint = fingerprint.into();
        self
    }

    /// The disk directory, if this cache has one.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Artifacts found corrupt and quarantined over this cache's
    /// lifetime.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::SeqCst)
    }

    /// Artifacts stamped by a different engine fingerprint and demoted
    /// to the `stale/` tier over this cache's lifetime.
    pub fn stale(&self) -> usize {
        self.stale.load(Ordering::SeqCst)
    }

    /// Pre-checksum (unstamped, unchecksummed) artifacts rejected and
    /// quarantined over this cache's lifetime.
    pub fn legacy_rejected(&self) -> usize {
        self.legacy_rejected.load(Ordering::SeqCst)
    }

    /// Stale `.quarantine` files removed when this cache was opened.
    pub fn quarantine_pruned(&self) -> usize {
        self.quarantine_pruned
    }

    /// Demoted `stale/` artifacts removed when this cache was opened.
    pub fn stale_pruned(&self) -> usize {
        self.stale_pruned
    }

    /// Looks up a result by job key: memory first, then disk (a disk hit
    /// is promoted into memory). A corrupt disk artifact is quarantined,
    /// a pre-checksum one is rejected into quarantine, and one stamped by
    /// a different engine fingerprint is demoted to `stale/` — all three
    /// report as a miss, so damage and skew degrade to recomputation,
    /// never to a wrong answer or an aborted batch.
    pub fn get(&self, key: &str) -> Option<JobReport> {
        if let Some(hit) = self.mem.lock().expect("cache lock").get(key) {
            return Some(hit.clone());
        }
        let path = self.artifact_path(key)?;
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(_) => {
                // Exists but unreadable: same treatment as corrupt.
                self.quarantine(&path);
                return None;
            }
        };
        let report = match parse_artifact(&text, key, &self.fingerprint) {
            Ok(report) => report,
            Err(ArtifactIssue::Corrupt(reason)) => {
                if tdsigma_obs::tracing_enabled() {
                    tdsigma_obs::event("cache.corrupt", &[("reason", reason.to_string())]);
                }
                self.quarantine(&path);
                return None;
            }
            Err(ArtifactIssue::Legacy) => {
                self.quarantine(&path);
                self.legacy_rejected.fetch_add(1, Ordering::SeqCst);
                tdsigma_obs::counter("jobs.cache_legacy_rejected").inc();
                return None;
            }
            Err(ArtifactIssue::Stale { stamped }) => {
                self.demote_stale(&path, &stamped);
                return None;
            }
        };
        self.mem
            .lock()
            .expect("cache lock")
            .insert(key.to_string(), report.clone());
        Some(report)
    }

    /// Cheap presence probe: true if `key` is in the memory tier or an
    /// artifact file exists on disk. Unlike [`ResultCache::get`] this
    /// never reads, parses, quarantines or promotes — it is the
    /// dry-run/planning primitive, so a preview of a 10k-job sweep costs
    /// 10k `stat` calls, not 10k artifact parses. A corrupt artifact
    /// therefore counts as present here and will only be quarantined
    /// (and re-executed) by the real run.
    pub fn contains(&self, key: &str) -> bool {
        if self.mem.lock().expect("cache lock").contains_key(key) {
            return true;
        }
        self.artifact_path(key).is_some_and(|p| p.exists())
    }

    /// Stores a result under its own key, in memory and (if configured)
    /// on disk. The disk write is atomic (temp file + rename) so a
    /// concurrent reader never observes a torn artifact.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the disk write fails; the in-memory
    /// tier is updated regardless.
    pub fn put(&self, report: &JobReport) -> Result<(), JobError> {
        self.mem
            .lock()
            .expect("cache lock")
            .insert(report.key.clone(), report.clone());
        if let Some(path) = self.artifact_path(&report.key) {
            let intact = artifact_text(report, &self.fingerprint);
            let bytes = self
                .faults
                .corrupt_artifact(&report.key, &intact)
                .unwrap_or(intact);
            let tmp = path.with_extension("json.tmp");
            fs::write(&tmp, bytes).map_err(|e| JobError::io_at(&tmp, &e))?;
            fs::rename(&tmp, &path).map_err(|e| JobError::io_at(&path, &e))?;
        }
        Ok(())
    }

    /// Moves a damaged artifact aside as `<name>.quarantine` (never
    /// consulted by lookups) and counts it. Best-effort: if the rename
    /// fails the file is removed so it cannot be re-read either way.
    fn quarantine(&self, path: &Path) {
        let mut target = path.as_os_str().to_owned();
        target.push(".quarantine");
        if fs::rename(path, PathBuf::from(target)).is_err() {
            let _ = fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::SeqCst);
        tdsigma_obs::counter("jobs.cache_quarantined").inc();
        if tdsigma_obs::tracing_enabled() {
            tdsigma_obs::event(
                "cache.quarantine",
                &[("artifact", path.display().to_string())],
            );
        }
    }

    /// Moves an artifact stamped by a different engine into the
    /// `stale/` tier and counts it. The bytes are intact (checksum
    /// verified) — just from the wrong binary — so they are preserved
    /// rather than quarantined; lookups never descend into `stale/`.
    /// Best-effort: if the move fails the file is removed so it cannot
    /// be replayed either way.
    fn demote_stale(&self, path: &Path, stamped: &str) {
        let moved = path
            .parent()
            .and_then(|parent| {
                let tier = parent.join(STALE_DIR);
                fs::create_dir_all(&tier).ok()?;
                let name = path.file_name()?;
                fs::rename(path, tier.join(name)).ok()
            })
            .is_some();
        if !moved {
            let _ = fs::remove_file(path);
        }
        self.stale.fetch_add(1, Ordering::SeqCst);
        tdsigma_obs::counter("jobs.cache_stale").inc();
        if tdsigma_obs::tracing_enabled() {
            tdsigma_obs::event(
                "cache.stale",
                &[
                    ("artifact", path.display().to_string()),
                    ("stamped", stamped.to_string()),
                    ("engine", self.fingerprint.clone()),
                ],
            );
        }
    }

    /// Number of results in the in-memory tier.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache lock").len()
    }

    /// True if the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn artifact_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are hex strings produced by `Job::key`; refuse anything
        // else so a hostile serve request cannot traverse paths.
        if !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.dir.as_ref().map(|d| d.join(format!("{key}.json")))
    }

    /// Inventories a cache directory against `fingerprint` without
    /// mutating anything: every root artifact is read and classified,
    /// and the demoted/quarantined tiers are counted. This is the
    /// `tdsigma cache stats` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the directory cannot be read.
    pub fn inspect(dir: &Path, fingerprint: &str) -> Result<CacheStats, JobError> {
        let mut stats = CacheStats::default();
        for (path, name) in root_artifacts(dir)? {
            let key = name.trim_end_matches(".json");
            match classify_artifact(&path, key, fingerprint) {
                ArtifactClass::Fresh => stats.fresh += 1,
                ArtifactClass::Mismatched => stats.mismatched += 1,
                ArtifactClass::Suspect => stats.suspect += 1,
            }
        }
        stats.stale = count_files(&dir.join(STALE_DIR), |n| n.ends_with(".json"));
        stats.quarantined = count_files(dir, |n| n.ends_with(".quarantine"));
        Ok(stats)
    }

    /// Prunes a cache directory down to artifacts this engine can
    /// trust: root artifacts stamped by a foreign fingerprint, suspect
    /// (corrupt or pre-checksum) artifacts, the demoted `stale/` tier
    /// and accumulated `.quarantine` files are all removed; fresh
    /// artifacts are kept. This is the `tdsigma cache scrub` primitive.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the directory cannot be read.
    pub fn scrub(dir: &Path, fingerprint: &str) -> Result<CacheScrub, JobError> {
        let mut scrub = CacheScrub::default();
        for (path, name) in root_artifacts(dir)? {
            let key = name.trim_end_matches(".json");
            match classify_artifact(&path, key, fingerprint) {
                ArtifactClass::Fresh => scrub.fresh_kept += 1,
                ArtifactClass::Mismatched => {
                    if fs::remove_file(&path).is_ok() {
                        scrub.removed_mismatched += 1;
                    }
                }
                ArtifactClass::Suspect => {
                    if fs::remove_file(&path).is_ok() {
                        scrub.removed_suspect += 1;
                    }
                }
            }
        }
        scrub.removed_stale = remove_files(&dir.join(STALE_DIR), |n| n.ends_with(".json"));
        scrub.removed_quarantine = remove_files(dir, |n| n.ends_with(".quarantine"));
        if scrub.removed() > 0 {
            tdsigma_obs::counter("jobs.cache_scrubbed").add(scrub.removed() as u64);
        }
        Ok(scrub)
    }
}

/// What [`ResultCache::inspect`] found in a cache directory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Root artifacts that verify and match the given fingerprint.
    pub fresh: usize,
    /// Root artifacts that verify but carry a different fingerprint
    /// (would be demoted to `stale/` on lookup).
    pub mismatched: usize,
    /// Root artifacts that are corrupt, unstamped (pre-checksum), or
    /// filed under the wrong key (would be quarantined on lookup).
    pub suspect: usize,
    /// Artifacts already demoted into the `stale/` tier.
    pub stale: usize,
    /// `.quarantine` files awaiting post-mortem or pruning.
    pub quarantined: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fresh:       {:>6}", self.fresh)?;
        writeln!(f, "mismatched:  {:>6}", self.mismatched)?;
        writeln!(f, "suspect:     {:>6}", self.suspect)?;
        writeln!(f, "stale tier:  {:>6}", self.stale)?;
        write!(f, "quarantined: {:>6}", self.quarantined)
    }
}

/// What [`ResultCache::scrub`] removed and kept.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheScrub {
    /// Verifying artifacts with the right fingerprint, left in place.
    pub fresh_kept: usize,
    /// Root artifacts removed for carrying a foreign fingerprint.
    pub removed_mismatched: usize,
    /// Root artifacts removed as corrupt/unstamped/misfiled.
    pub removed_suspect: usize,
    /// Files removed from the demoted `stale/` tier.
    pub removed_stale: usize,
    /// `.quarantine` files removed.
    pub removed_quarantine: usize,
}

impl CacheScrub {
    /// Total files removed across all tiers.
    pub fn removed(&self) -> usize {
        self.removed_mismatched
            + self.removed_suspect
            + self.removed_stale
            + self.removed_quarantine
    }
}

impl std::fmt::Display for CacheScrub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "removed {} ({} mismatched, {} suspect, {} stale, {} quarantined); kept {} fresh",
            self.removed(),
            self.removed_mismatched,
            self.removed_suspect,
            self.removed_stale,
            self.removed_quarantine,
            self.fresh_kept
        )
    }
}

/// How a root artifact reads against a given engine fingerprint.
enum ArtifactClass {
    Fresh,
    Mismatched,
    Suspect,
}

fn classify_artifact(path: &Path, key: &str, fingerprint: &str) -> ArtifactClass {
    let Ok(text) = fs::read_to_string(path) else {
        return ArtifactClass::Suspect;
    };
    match parse_artifact(&text, key, fingerprint) {
        Ok(_) => ArtifactClass::Fresh,
        Err(ArtifactIssue::Stale { .. }) => ArtifactClass::Mismatched,
        Err(ArtifactIssue::Corrupt(_) | ArtifactIssue::Legacy) => ArtifactClass::Suspect,
    }
}

/// Root-level `<hex-key>.json` artifacts of a cache directory, as
/// (path, file name) pairs.
///
/// # Errors
///
/// Returns [`JobError::Io`] if the directory cannot be read.
fn root_artifacts(dir: &Path) -> Result<Vec<(PathBuf, String)>, JobError> {
    let entries = fs::read_dir(dir).map_err(|e| JobError::io_at(dir, &e))?;
    let mut found = Vec::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        if stem.is_empty() || !stem.chars().all(|c| c.is_ascii_hexdigit()) {
            continue;
        }
        found.push((path.clone(), name.to_string()));
    }
    found.sort();
    Ok(found)
}

fn count_files(dir: &Path, matches: impl Fn(&str) -> bool) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    entries
        .flatten()
        .filter(|e| {
            e.path().is_file()
                && e.path()
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(&matches)
        })
        .count()
}

fn remove_files(dir: &Path, matches: impl Fn(&str) -> bool) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0usize;
    for entry in entries.flatten() {
        let path = entry.path();
        let hit = path.is_file()
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(&matches);
        if hit && fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Removes all but the newest `retain` quarantined artifacts from `dir`.
fn prune_quarantine(dir: &Path, retain: usize) -> usize {
    prune_oldest(
        dir,
        retain,
        ".quarantine",
        "jobs.cache_quarantine_pruned",
        "cache.quarantine_prune",
    )
}

/// Removes all but the newest `retain` demoted artifacts from the
/// `stale/` tier at `dir`.
fn prune_stale(dir: &Path, retain: usize) -> usize {
    prune_oldest(
        dir,
        retain,
        ".json",
        "jobs.cache_stale_pruned",
        "cache.stale_prune",
    )
}

/// Removes all but the newest `retain` files ending in `suffix` from
/// `dir`, bumping `counter` and emitting `event` when anything goes.
/// Ordering is by (mtime, name) so files with identical timestamps still
/// prune deterministically. Best-effort: an unreadable directory or a
/// failed removal just prunes less.
fn prune_oldest(dir: &Path, retain: usize, suffix: &str, counter: &str, event: &str) -> usize {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut stale: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let path = entry.path();
            let matches = path.is_file()
                && path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.ends_with(suffix));
            if !matches {
                return None;
            }
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            Some((mtime, path))
        })
        .collect();
    if stale.len() <= retain {
        return 0;
    }
    stale.sort(); // oldest first; (mtime, path) breaks timestamp ties
    let doomed = stale.len() - retain;
    let mut pruned = 0usize;
    for (_, path) in stale.into_iter().take(doomed) {
        if fs::remove_file(&path).is_ok() {
            pruned += 1;
        }
    }
    if pruned > 0 {
        tdsigma_obs::counter(counter).add(pruned as u64);
        if tdsigma_obs::tracing_enabled() {
            tdsigma_obs::event(
                event,
                &[
                    ("dir", dir.display().to_string()),
                    ("pruned", pruned.to_string()),
                ],
            );
        }
    }
    pruned
}

/// Why an artifact was refused, and therefore where it goes: corrupt
/// and legacy artifacts are quarantined, stale ones are demoted.
#[derive(Debug)]
enum ArtifactIssue {
    /// Unparsable, checksum-mismatched, or filed under the wrong key.
    Corrupt(JobError),
    /// Pre-checksum single-line format: parses, but nothing vouches for
    /// the bytes or the engine that wrote them.
    Legacy,
    /// Intact (checksum verified) but stamped by a different engine
    /// fingerprint — or by none, for the checksummed-but-unstamped
    /// interim format.
    Stale {
        /// The fingerprint the artifact carries (`"unknown"` if the
        /// trailer predates stamping).
        stamped: String,
    },
}

impl From<JobError> for ArtifactIssue {
    fn from(e: JobError) -> Self {
        ArtifactIssue::Corrupt(e)
    }
}

/// Serializes one artifact: the report line followed by its checksum +
/// engine-fingerprint trailer.
fn artifact_text(report: &JobReport, fingerprint: &str) -> String {
    let line = report.to_text();
    let crc = fnv1a64(line.as_bytes(), CRC_BASIS);
    format!("{line}\ncrc64:{crc:016x} fp:{fingerprint}\n")
}

/// Parses and verifies one artifact against `fingerprint`,
/// distinguishing the three refusal states (see [`ArtifactIssue`]).
/// Note the checksum is verified *before* the fingerprint: a stale
/// classification is a statement about intact bytes.
fn parse_artifact(text: &str, key: &str, fingerprint: &str) -> Result<JobReport, ArtifactIssue> {
    let mut lines = text.lines();
    let line = lines
        .next()
        .ok_or_else(|| JobError::Invalid("empty artifact".into()))?;
    let Some(trailer) = lines.next() else {
        // Single-line pre-checksum format. It must still parse and
        // carry the right key to count as legacy rather than corrupt.
        let report = JobReport::from_text(line)?;
        if report.key != key {
            return Err(misfiled(key, &report.key).into());
        }
        return Err(ArtifactIssue::Legacy);
    };
    let body = trailer
        .strip_prefix("crc64:")
        .ok_or_else(|| JobError::Invalid(format!("malformed checksum trailer {trailer:?}")))?;
    let (stated, stamped) = match body.split_once(' ') {
        Some((crc, rest)) => {
            let fp = rest.strip_prefix("fp:").ok_or_else(|| {
                JobError::Invalid(format!("malformed fingerprint stamp {rest:?}"))
            })?;
            (crc, Some(fp))
        }
        // Checksummed-but-unstamped interim format (PRs 3–8).
        None => (body, None),
    };
    let actual = format!("{:016x}", fnv1a64(line.as_bytes(), CRC_BASIS));
    if stated != actual {
        return Err(JobError::Invalid(format!(
            "checksum mismatch: artifact says {stated}, content hashes to {actual}"
        ))
        .into());
    }
    let report = JobReport::from_text(line)?;
    // Never serve an artifact filed under the wrong key (e.g. a
    // hand-renamed file): the report embeds its own address.
    if report.key != key {
        return Err(misfiled(key, &report.key).into());
    }
    match stamped {
        Some(fp) if fp == fingerprint => Ok(report),
        Some(fp) => Err(ArtifactIssue::Stale {
            stamped: fp.to_string(),
        }),
        None => Err(ArtifactIssue::Stale {
            stamped: "unknown".to_string(),
        }),
    }
}

fn misfiled(key: &str, reported: &str) -> JobError {
    JobError::Invalid(format!(
        "artifact filed under {key} but reports key {reported}"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    fn report_for(job: &Job) -> JobReport {
        JobReport {
            key: job.key(),
            job: job.clone(),
            fin_hz: 1e6,
            sndr_db: 68.5,
            enob: 11.1,
            power_mw: None,
            digital_fraction: None,
            area_mm2: None,
            fom_fj: None,
            timing_slack_ps: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tdsigma_cache_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_roundtrip() {
        let cache = ResultCache::in_memory();
        let job = Job::sim(40.0, 750e6, 5e6);
        assert!(cache.get(&job.key()).is_none());
        cache.put(&report_for(&job)).unwrap();
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_survives_cache_instance() {
        let dir = temp_dir("persist");
        let job = Job::sim(40.0, 750e6, 5e6);
        {
            let cache = ResultCache::with_disk(&dir).unwrap();
            cache.put(&report_for(&job)).unwrap();
        }
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(fresh.len(), 0, "memory tier starts cold");
        let hit = fresh.get(&job.key()).expect("disk hit");
        assert_eq!(hit.key, job.key());
        assert_eq!(fresh.len(), 1, "disk hit promoted to memory");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_artifact_is_ignored() {
        let dir = temp_dir("mismatch");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        cache.put(&report_for(&job)).unwrap();
        // File the artifact under a different (valid-hex) key.
        let other_key = "deadbeef".repeat(4);
        fs::copy(
            dir.join(format!("{}.json", job.key())),
            dir.join(format!("{other_key}.json")),
        )
        .unwrap();
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&other_key).is_none(), "key mismatch must miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_quarantined_and_counted() {
        let dir = temp_dir("quarantine");
        let job = Job::sim(40.0, 750e6, 5e6);
        let key = job.key();
        {
            let cache = ResultCache::with_disk(&dir).unwrap();
            cache.put(&report_for(&job)).unwrap();
        }
        // Truncate the artifact mid-record.
        let path = dir.join(format!("{key}.json"));
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 3]).unwrap();

        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&key).is_none(), "corrupt artifact must miss");
        assert_eq!(fresh.quarantined(), 1);
        assert!(!path.exists(), "damaged file must be moved aside");
        assert!(
            dir.join(format!("{key}.json.quarantine")).exists(),
            "quarantine file must carry the .quarantine suffix"
        );
        // The quarantined bytes are never consulted again: a re-put then
        // a fresh lookup serves the new, intact artifact.
        fresh.put(&report_for(&job)).unwrap();
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.get(&key).unwrap().sndr_db, 68.5);
        assert_eq!(again.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_detects_silent_bit_damage() {
        let dir = temp_dir("bitrot");
        let job = Job::sim(40.0, 750e6, 5e6);
        let cache = ResultCache::with_disk(&dir).unwrap();
        cache.put(&report_for(&job)).unwrap();
        // Flip one digit inside the JSON so it still parses and still
        // carries the right key — only the checksum can catch this.
        let path = dir.join(format!("{}.json", job.key()));
        let text = fs::read_to_string(&path).unwrap();
        let damaged = text.replacen("68.5", "68.6", 1);
        assert_ne!(text, damaged, "test must actually flip a value");
        fs::write(&path, damaged).unwrap();

        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(fresh.get(&job.key()).is_none(), "bit damage must miss");
        assert_eq!(fresh.quarantined(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_checksum_less_artifacts_are_rejected() {
        let dir = temp_dir("legacy");
        let job = Job::sim(40.0, 750e6, 5e6);
        let report = report_for(&job);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.json", job.key()));
        fs::write(&path, report.to_text() + "\n").unwrap();
        let cache = ResultCache::with_disk(&dir).unwrap();
        // PR 2's single-line format has no checksum and no fingerprint:
        // nothing vouches for the bytes, so it is quarantined — and
        // counted on its own counter, distinct from corruption.
        assert!(
            cache.get(&job.key()).is_none(),
            "unchecksummed artifact must not be trusted"
        );
        assert_eq!(cache.legacy_rejected(), 1);
        assert_eq!(cache.quarantined(), 1, "rejection lands in quarantine");
        assert_eq!(cache.stale(), 0);
        assert!(!path.exists(), "rejected file must be moved aside");
        assert!(path.with_extension("json.quarantine").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_fingerprint_artifact_is_demoted_not_replayed() {
        let dir = temp_dir("skew");
        let job = Job::sim(40.0, 750e6, 5e6);
        let key = job.key();
        {
            // Stage a cache "written by a different binary".
            let old = ResultCache::with_disk(&dir)
                .unwrap()
                .with_fingerprint("aaaaaaaaaaaaaaaa");
            old.put(&report_for(&job)).unwrap();
        }
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert!(
            cache.get(&key).is_none(),
            "foreign-fingerprint artifact must never replay"
        );
        assert_eq!(cache.stale(), 1);
        assert_eq!(cache.quarantined(), 0, "intact bytes are not quarantined");
        assert!(!dir.join(format!("{key}.json")).exists());
        assert!(
            dir.join(STALE_DIR).join(format!("{key}.json")).exists(),
            "demoted artifact must land in the stale/ tier"
        );
        // The demoted file stays out of the lookup path permanently.
        assert!(!cache.contains(&key));
        assert!(cache.get(&key).is_none());
        assert_eq!(cache.stale(), 1, "already-demoted artifact counts once");
        // Re-putting with this engine's fingerprint makes the key fresh.
        cache.put(&report_for(&job)).unwrap();
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.get(&key).unwrap().sndr_db, 68.5);
        assert_eq!(again.stale(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksummed_but_unstamped_artifact_is_demoted() {
        // The interim format (crc trailer, no fp stamp) verifies but
        // cannot prove which engine wrote it: demote, don't quarantine.
        let dir = temp_dir("interim");
        let job = Job::sim(40.0, 750e6, 5e6);
        let report = report_for(&job);
        fs::create_dir_all(&dir).unwrap();
        let line = report.to_text();
        let crc = fnv1a64(line.as_bytes(), CRC_BASIS);
        fs::write(
            dir.join(format!("{}.json", job.key())),
            format!("{line}\ncrc64:{crc:016x}\n"),
        )
        .unwrap();
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert!(cache.get(&job.key()).is_none());
        assert_eq!(cache.stale(), 1);
        assert_eq!(cache.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_and_scrub_inventory_and_prune() {
        let dir = temp_dir("scrub");
        let fresh_job = Job::sim(40.0, 750e6, 5e6);
        let foreign_job = Job::sim(40.0, 750e6, 4e6);
        let legacy_job = Job::sim(40.0, 750e6, 3e6);
        let cache = ResultCache::with_disk(&dir).unwrap();
        cache.put(&report_for(&fresh_job)).unwrap();
        ResultCache::with_disk(&dir)
            .unwrap()
            .with_fingerprint("bbbbbbbbbbbbbbbb")
            .put(&report_for(&foreign_job))
            .unwrap();
        fs::write(
            dir.join(format!("{}.json", legacy_job.key())),
            report_for(&legacy_job).to_text() + "\n",
        )
        .unwrap();
        fs::create_dir_all(dir.join(STALE_DIR)).unwrap();
        fs::write(dir.join(STALE_DIR).join("00ab.json"), "parked").unwrap();
        fs::write(dir.join("00cd.json.quarantine"), "junk").unwrap();

        let fp = engine_fingerprint();
        let stats = ResultCache::inspect(&dir, fp).unwrap();
        assert_eq!(
            stats,
            CacheStats {
                fresh: 1,
                mismatched: 1,
                suspect: 1,
                stale: 1,
                quarantined: 1,
            }
        );
        // Inspect never mutates: a second pass sees the same picture.
        assert_eq!(ResultCache::inspect(&dir, fp).unwrap(), stats);

        let scrub = ResultCache::scrub(&dir, fp).unwrap();
        assert_eq!(scrub.fresh_kept, 1);
        assert_eq!(scrub.removed_mismatched, 1);
        assert_eq!(scrub.removed_suspect, 1);
        assert_eq!(scrub.removed_stale, 1);
        assert_eq!(scrub.removed_quarantine, 1);
        assert_eq!(scrub.removed(), 4);

        let after = ResultCache::inspect(&dir, fp).unwrap();
        assert_eq!(after.fresh, 1, "fresh artifact survives the scrub");
        assert_eq!(
            after.mismatched + after.suspect + after.stale + after.quarantined,
            0
        );
        // The surviving artifact still hits.
        let reopened = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(reopened.get(&fresh_job.key()).unwrap().sndr_db, 68.5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_corruption_round_trips_through_quarantine() {
        let dir = temp_dir("faulty_writes");
        let always_corrupt = FaultPlan {
            seed: 5,
            corrupt_artifact_permille: 1000,
            ..FaultPlan::default()
        };
        let job = Job::sim(40.0, 750e6, 5e6);
        {
            let cache = ResultCache::with_disk(&dir)
                .unwrap()
                .with_faults(always_corrupt);
            cache.put(&report_for(&job)).unwrap();
            // The memory tier keeps the good copy; only the disk lies.
            assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        }
        let fresh = ResultCache::with_disk(&dir).unwrap();
        assert!(
            fresh.get(&job.key()).is_none(),
            "corrupted write must not come back as a hit"
        );
        assert_eq!(fresh.quarantined(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_backlog_is_pruned_to_retention_on_open() {
        let dir = temp_dir("prune");
        fs::create_dir_all(&dir).unwrap();
        let total = QUARANTINE_RETAIN + 5;
        for i in 0..total {
            fs::write(dir.join(format!("{i:032x}.json.quarantine")), "junk").unwrap();
        }
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(cache.quarantine_pruned(), 5);
        let remaining = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().ends_with(".quarantine"))
            .count();
        assert_eq!(remaining, QUARANTINE_RETAIN);
        // A second open has nothing left to prune.
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.quarantine_pruned(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tier_backlog_is_pruned_to_retention_on_open() {
        let dir = temp_dir("stale_prune");
        let stale_dir = dir.join(STALE_DIR);
        fs::create_dir_all(&stale_dir).unwrap();
        let total = STALE_RETAIN + 7;
        for i in 0..total {
            fs::write(stale_dir.join(format!("{i:032x}.json")), "old-version junk").unwrap();
        }
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(cache.stale_pruned(), 7);
        let remaining = fs::read_dir(&stale_dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().to_string_lossy().ends_with(".json"))
            .count();
        assert_eq!(remaining, STALE_RETAIN);
        // A second open has nothing left to prune, and a cache opened on
        // a directory with no stale/ tier at all reports zero.
        let again = ResultCache::with_disk(&dir).unwrap();
        assert_eq!(again.stale_pruned(), 0);
        let fresh = temp_dir("stale_prune_fresh");
        let empty = ResultCache::with_disk(&fresh).unwrap();
        assert_eq!(empty.stale_pruned(), 0);
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&fresh);
    }

    #[test]
    fn store_failure_from_tmp_write_is_structured_not_a_panic() {
        let dir = temp_dir("tmp_collision");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        // Occupy the tmp-file path with a directory: fs::write on it
        // fails with a real OS error regardless of privileges (even as
        // root, unlike a chmod-based read-only test).
        let tmp = dir.join(format!("{}.json.tmp", job.key()));
        fs::create_dir_all(&tmp).unwrap();
        let err = cache.put(&report_for(&job)).expect_err("write must fail");
        match &err {
            JobError::Io { path, .. } => {
                let p = path.as_deref().expect("error names the failing path");
                assert!(p.ends_with(".json.tmp"), "unexpected path {p}");
            }
            other => panic!("expected structured Io error, got {other:?}"),
        }
        // The memory tier was updated before the disk write: the result
        // is merely uncached, not lost.
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_failure_from_rename_is_structured_not_a_panic() {
        let dir = temp_dir("rename_collision");
        let cache = ResultCache::with_disk(&dir).unwrap();
        let job = Job::sim(40.0, 750e6, 5e6);
        // Occupy the final artifact path with a non-empty directory so
        // the tmp write succeeds but the rename over it cannot.
        let path = dir.join(format!("{}.json", job.key()));
        fs::create_dir_all(path.join("occupied")).unwrap();
        let err = cache.put(&report_for(&job)).expect_err("rename must fail");
        match &err {
            JobError::Io { path: p, .. } => {
                let p = p.as_deref().expect("error names the failing path");
                assert!(p.ends_with(".json"), "unexpected path {p}");
            }
            other => panic!("expected structured Io error, got {other:?}"),
        }
        assert_eq!(cache.get(&job.key()).unwrap().sndr_db, 68.5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_only_cache_dir_returns_structured_error() {
        // chmod-based read-only dirs don't bind as root (CI containers
        // often are); fall back to asserting the error shape only when
        // the OS actually enforces the mode.
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let dir = temp_dir("readonly");
            let cache = ResultCache::with_disk(&dir).unwrap();
            fs::set_permissions(&dir, fs::Permissions::from_mode(0o555)).unwrap();
            let job = Job::sim(40.0, 750e6, 5e6);
            let outcome = cache.put(&report_for(&job));
            fs::set_permissions(&dir, fs::Permissions::from_mode(0o755)).unwrap();
            match outcome {
                Err(JobError::Io { kind, path, .. }) => {
                    assert_eq!(kind, std::io::ErrorKind::PermissionDenied);
                    assert!(path.is_some(), "error must name the failing path");
                }
                Err(other) => panic!("expected Io error, got {other:?}"),
                // Running as root: the kernel ignores the mode bits and
                // the write goes through. Nothing to assert beyond "no
                // panic" — the collision tests above cover the error
                // shape deterministically.
                Ok(()) => {}
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn hostile_keys_never_touch_disk() {
        let dir = temp_dir("hostile");
        let cache = ResultCache::with_disk(&dir).unwrap();
        assert!(cache.get("../../etc/passwd").is_none());
        assert!(cache.get("a/b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
