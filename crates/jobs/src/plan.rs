//! Dry-run planning: what a batch *would* do, without executing it.
//!
//! `tdsigma sweep --dry-run` and `tdsigma optimize --dry-run` both need
//! the same answer — given a job list and the current cache, how many
//! jobs are planned, how many are in-batch duplicates, how many the
//! cache already answers, and how many flows would actually run. The
//! classification here mirrors phase 1 of
//! [`crate::engine::Engine::run_batch_with_journal`] exactly (cache hit
//! → dedup → execute), so the preview's prediction matches what the
//! real run will report.

use crate::cache::ResultCache;
use crate::job::Job;
use std::collections::HashSet;

/// One previewed job and its predicted disposition.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// The job's content-addressed key.
    pub key: String,
    /// The job itself.
    pub job: Job,
    /// Predicted to be answered from the cache.
    pub cached: bool,
    /// Duplicate of an earlier job in the same batch (executes zero
    /// additional flows regardless of cache state).
    pub duplicate: bool,
}

/// The predicted shape of a batch: counts plus per-job rows.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPreview {
    /// Jobs submitted.
    pub jobs: usize,
    /// Distinct job keys.
    pub unique: usize,
    /// In-batch duplicates (`jobs - unique`).
    pub duplicates: usize,
    /// Distinct keys the cache already answers.
    pub cache_hits: usize,
    /// Distinct keys that would execute a flow.
    pub to_execute: usize,
    /// Per-job dispositions, in submission order.
    pub rows: Vec<PlanRow>,
}

impl PlanPreview {
    /// Classifies `jobs` against `cache` (`None` → everything is a
    /// predicted miss) without executing anything.
    pub fn of(jobs: &[Job], cache: Option<&ResultCache>) -> Self {
        let mut seen: HashSet<String> = HashSet::new();
        let mut rows = Vec::with_capacity(jobs.len());
        let mut cache_hits = 0usize;
        let mut to_execute = 0usize;
        for job in jobs {
            let key = job.key();
            let duplicate = !seen.insert(key.clone());
            let cached = cache.is_some_and(|c| c.contains(&key));
            if !duplicate {
                if cached {
                    cache_hits += 1;
                } else {
                    to_execute += 1;
                }
            }
            rows.push(PlanRow {
                key,
                job: job.clone(),
                cached,
                duplicate,
            });
        }
        PlanPreview {
            jobs: jobs.len(),
            unique: seen.len(),
            duplicates: jobs.len() - seen.len(),
            cache_hits,
            to_execute,
            rows,
        }
    }

    /// The one-line summary (`N jobs: U unique, D duplicates, H cached,
    /// X to execute`).
    pub fn summary(&self) -> String {
        format!(
            "{} job(s): {} unique, {} in-batch duplicate(s), \
             {} predicted cache hit(s), {} to execute",
            self.jobs, self.unique, self.duplicates, self.cache_hits, self.to_execute
        )
    }

    /// The human-readable plan table, one row per job.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>10} {:>6} {:>7} {:>9} {:>8} {:>8} {:>6} {:>10}\n",
            "key", "node", "slices", "fs[MHz]", "samples", "rdac[Ω]", "kind", "plan"
        ));
        for row in &self.rows {
            let plan = if row.duplicate {
                "dup"
            } else if row.cached {
                "cached"
            } else {
                "execute"
            };
            let rdac = if row.job.rdac_ohm == 0.0 {
                "-".to_string()
            } else {
                format!("{:.0}", row.job.rdac_ohm)
            };
            out.push_str(&format!(
                "{:>10} {:>6} {:>7} {:>9.0} {:>8} {:>8} {:>6} {:>10}\n",
                &row.key[..10.min(row.key.len())],
                format!("{:.0}", row.job.node_nm),
                row.job.slices,
                row.job.fs_hz / 1e6,
                row.job.samples,
                rdac,
                row.job.kind.as_str(),
                plan,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs_with_seeds(seeds: &[u64]) -> Vec<Job> {
        seeds
            .iter()
            .map(|&s| {
                let mut j = Job::sim(40.0, 750e6, 5e6);
                j.seed = s;
                j
            })
            .collect()
    }

    #[test]
    fn preview_counts_duplicates_and_misses() {
        let jobs = jobs_with_seeds(&[1, 2, 1, 3, 2]);
        let p = PlanPreview::of(&jobs, None);
        assert_eq!(p.jobs, 5);
        assert_eq!(p.unique, 3);
        assert_eq!(p.duplicates, 2);
        assert_eq!(p.cache_hits, 0);
        assert_eq!(p.to_execute, 3);
        assert!(p.rows[2].duplicate && p.rows[4].duplicate);
        assert!(p.summary().contains("3 to execute"));
    }

    #[test]
    fn preview_predicts_cache_hits() {
        use crate::report::JobReport;
        let cache = ResultCache::in_memory();
        let jobs = jobs_with_seeds(&[1, 2]);
        cache
            .put(&JobReport {
                key: jobs[0].key(),
                job: jobs[0].clone(),
                fin_hz: 1e6,
                sndr_db: 60.0,
                enob: 9.7,
                power_mw: None,
                digital_fraction: None,
                area_mm2: None,
                fom_fj: None,
                timing_slack_ps: None,
            })
            .unwrap();
        let p = PlanPreview::of(&jobs, Some(&cache));
        assert_eq!(p.cache_hits, 1);
        assert_eq!(p.to_execute, 1);
        assert!(p.rows[0].cached && !p.rows[1].cached);
        let table = p.table();
        assert!(
            table.contains("cached") && table.contains("execute"),
            "{table}"
        );
    }

    #[test]
    fn duplicate_of_cached_job_counts_once() {
        let jobs = jobs_with_seeds(&[7, 7]);
        let p = PlanPreview::of(&jobs, None);
        assert_eq!(p.unique, 1);
        assert_eq!(p.to_execute, 1);
        assert_eq!(p.duplicates, 1);
    }
}
