//! The worker pool: `std::thread` workers draining a shared channel,
//! with per-job panic isolation, bounded retries, and cooperative
//! cancellation.
//!
//! Design notes:
//!
//! * One `mpsc` task channel feeds all workers (receiver behind a mutex —
//!   the lock is held only for the dequeue, never during execution).
//! * Every task carries its own reply channel, so completions never
//!   contend and callers can await jobs in any order.
//! * A panicking job is contained by `catch_unwind`: the worker thread
//!   survives, the panic becomes a [`JobError::Failed`] for that job
//!   only, and the rest of the batch is untouched.
//! * Retries happen in the worker, bounded by [`PoolConfig::retries`];
//!   validation errors are never retried (same input, same failure).
//! * Cancellation is cooperative: a shared flag checked before each
//!   attempt. In-flight flows finish; queued jobs drain as `Canceled`.

use crate::error::JobError;
use crate::job::Job;
use crate::metrics::StageTimes;
use crate::report::JobReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A job runner: everything the pool knows about executing work. The
/// engine installs [`crate::execute::execute`]; tests inject hostile
/// runners (panicking, flaky, slow) to exercise the scheduler itself.
pub type Runner = dyn Fn(&Job) -> Result<(JobReport, StageTimes), JobError> + Send + Sync;

/// Pool sizing and retry policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads. Clamped to at least 1.
    pub workers: usize,
    /// Extra attempts after a retryable failure (0 = fail fast).
    pub retries: u32,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: default_workers(),
            retries: 1,
        }
    }
}

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What the pool sends back for one submitted job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The report, or why there is none.
    pub result: Result<JobReport, JobError>,
    /// Attempts made (0 if the job never started).
    pub attempts: u32,
    /// Wall time spent executing this job (all attempts), ms.
    pub exec_ms: f64,
    /// Per-stage wall time of the successful attempt.
    pub stages: StageTimes,
}

struct Task {
    job: Job,
    reply: mpsc::Sender<JobOutcome>,
}

/// A fixed set of worker threads executing submitted jobs.
pub struct WorkerPool {
    tx: Mutex<Option<mpsc::Sender<Task>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    cancel: Arc<AtomicBool>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns the workers.
    pub fn new(config: PoolConfig, runner: Arc<Runner>) -> Self {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        let cancel = Arc::new(AtomicBool::new(false));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cancel = Arc::clone(&cancel);
                let runner = Arc::clone(&runner);
                let retries = config.retries;
                std::thread::Builder::new()
                    .name(format!("tdsigma-job-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &cancel, &runner, retries))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            cancel,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Submits a job; the returned receiver yields exactly one
    /// [`JobOutcome`] (immediately, if the pool is already closed).
    pub fn submit(&self, job: Job) -> mpsc::Receiver<JobOutcome> {
        let (reply, rx) = mpsc::channel();
        let closed_outcome = || JobOutcome {
            result: Err(JobError::PoolClosed),
            attempts: 0,
            exec_ms: 0.0,
            stages: StageTimes::default(),
        };
        match &*self.tx.lock().expect("pool lock") {
            Some(tx) => {
                if let Err(mpsc::SendError(task)) = tx.send(Task { job, reply }) {
                    let _ = task.reply.send(closed_outcome());
                }
            }
            None => {
                let _ = reply.send(closed_outcome());
            }
        }
        rx
    }

    /// Requests cooperative cancellation: queued jobs resolve as
    /// [`JobError::Canceled`]; in-flight jobs run to completion.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_canceled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Closes the queue and joins every worker. Idempotent.
    pub fn shutdown(&self) {
        self.tx.lock().expect("pool lock").take();
        let handles: Vec<_> = self.handles.lock().expect("pool lock").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("canceled", &self.is_canceled())
            .finish()
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Task>>,
    cancel: &AtomicBool,
    runner: &Arc<Runner>,
    retries: u32,
) {
    loop {
        // Hold the lock only for the dequeue.
        let task = match rx.lock().expect("task queue lock").recv() {
            Ok(task) => task,
            Err(_) => break, // queue closed: pool is shutting down
        };
        if cancel.load(Ordering::SeqCst) {
            let _ = task.reply.send(JobOutcome {
                result: Err(JobError::Canceled),
                attempts: 0,
                exec_ms: 0.0,
                stages: StageTimes::default(),
            });
            continue;
        }
        let started = Instant::now();
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            let attempt = catch_unwind(AssertUnwindSafe(|| runner(&task.job)));
            let may_retry = attempts <= retries && !cancel.load(Ordering::SeqCst);
            match attempt {
                Ok(Ok((report, stages))) => {
                    break JobOutcome {
                        result: Ok(report),
                        attempts,
                        exec_ms: started.elapsed().as_secs_f64() * 1e3,
                        stages,
                    }
                }
                Ok(Err(e)) if e.is_retryable() && may_retry => continue,
                Ok(Err(e)) => {
                    let result = match e {
                        JobError::Invalid(m) => Err(JobError::Invalid(m)),
                        JobError::Failed { message, .. } => {
                            Err(JobError::Failed { attempts, message })
                        }
                        other => Err(JobError::Failed {
                            attempts,
                            message: other.to_string(),
                        }),
                    };
                    break JobOutcome {
                        result,
                        attempts,
                        exec_ms: started.elapsed().as_secs_f64() * 1e3,
                        stages: StageTimes::default(),
                    };
                }
                Err(panic) => {
                    if may_retry {
                        continue;
                    }
                    break JobOutcome {
                        result: Err(JobError::Failed {
                            attempts,
                            message: format!("panic: {}", panic_message(&*panic)),
                        }),
                        attempts,
                        exec_ms: started.elapsed().as_secs_f64() * 1e3,
                        stages: StageTimes::default(),
                    };
                }
            }
        };
        // A dropped receiver just means the caller stopped waiting.
        let _ = task.reply.send(outcome);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn dummy_report(job: &Job) -> JobReport {
        JobReport {
            key: job.key(),
            job: job.clone(),
            fin_hz: 1e6,
            sndr_db: 60.0,
            enob: 9.7,
            power_mw: None,
            digital_fraction: None,
            area_mm2: None,
            fom_fj: None,
            timing_slack_ps: None,
        }
    }

    fn job_with_seed(seed: u64) -> Job {
        let mut job = Job::sim(40.0, 750e6, 5e6);
        job.seed = seed;
        job
    }

    #[test]
    fn executes_and_replies() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 2,
                retries: 0,
            },
            Arc::new(|job: &Job| Ok((dummy_report(job), StageTimes::default()))),
        );
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.result.unwrap().sndr_db, 60.0);
    }

    #[test]
    fn panic_is_isolated_to_the_job() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 2,
                retries: 0,
            },
            Arc::new(|job: &Job| {
                if job.seed == 13 {
                    panic!("injected fault on die 13");
                }
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let bad = pool.submit(job_with_seed(13));
        let good: Vec<_> = (0..4).map(|s| pool.submit(job_with_seed(s))).collect();
        match bad.recv().unwrap().result {
            Err(JobError::Failed { message, .. }) => {
                assert!(message.contains("injected fault"), "message: {message}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        for rx in good {
            assert!(
                rx.recv().unwrap().result.is_ok(),
                "pool must survive the panic"
            );
        }
    }

    #[test]
    fn retries_recover_flaky_jobs_and_are_counted() {
        let failures = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&failures);
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 2,
            },
            Arc::new(move |job: &Job| {
                if f.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let outcome = pool.submit(job_with_seed(7)).recv().unwrap();
        assert_eq!(outcome.attempts, 3);
        assert!(outcome.result.is_ok());
    }

    #[test]
    fn invalid_errors_are_not_retried() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 5,
            },
            Arc::new(move |_: &Job| {
                c.fetch_add(1, Ordering::SeqCst);
                Err(JobError::Invalid("bad spec".into()))
            }),
        );
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert!(matches!(outcome.result, Err(JobError::Invalid(_))));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "validation failures never retry"
        );
    }

    #[test]
    fn cancellation_drains_queued_jobs() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
            },
            Arc::new(|job: &Job| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let receivers: Vec<_> = (0..6).map(|s| pool.submit(job_with_seed(s))).collect();
        pool.cancel();
        let outcomes: Vec<_> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        let canceled = outcomes
            .iter()
            .filter(|o| matches!(o.result, Err(JobError::Canceled)))
            .count();
        assert!(
            canceled >= 4,
            "queued jobs must drain as canceled, got {canceled}"
        );
    }

    #[test]
    fn submit_after_shutdown_reports_closed() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
            },
            Arc::new(|job: &Job| Ok((dummy_report(job), StageTimes::default()))),
        );
        pool.shutdown();
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert!(matches!(outcome.result, Err(JobError::PoolClosed)));
    }
}
