//! The worker pool: `std::thread` workers draining a shared channel,
//! with per-job panic isolation, bounded retries, and cooperative
//! cancellation.
//!
//! Design notes:
//!
//! * One `mpsc` task channel feeds all workers (receiver behind a mutex —
//!   the lock is held only for the dequeue, never during execution).
//! * Every task carries its own reply channel, so completions never
//!   contend and callers can await jobs in any order.
//! * A panicking job is contained by `catch_unwind`: the worker thread
//!   survives, the panic becomes a [`JobError::Failed`] for that job
//!   only, and the rest of the batch is untouched.
//! * Retries happen in the worker, bounded by [`PoolConfig::retries`],
//!   with exponential backoff and deterministic per-(job, attempt)
//!   jitter ([`backoff_delay_ms`]); validation errors are never retried
//!   (same input, same failure).
//! * A soft per-job deadline ([`PoolConfig::soft_deadline_ms`]) marks
//!   attempts that overrun as retryable [`JobError::Timeout`]s.
//! * Cancellation is cooperative: a shared flag checked before each
//!   attempt and during backoff sleeps. In-flight flows finish; queued
//!   jobs drain as `Canceled`. [`WorkerPool::drain`] is the graceful
//!   shutdown: cancel, then join every worker.
//! * Fault injection ([`FaultPlan`]) is consulted before each attempt;
//!   the empty plan reduces to integer compares.

use crate::error::JobError;
use crate::faults::{fnv1a64, AttemptFault, FaultPlan};
use crate::job::Job;
use crate::metrics::StageTimes;
use crate::report::JobReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tdsigma_obs as obs;
use tdsigma_tech::Rng64;

/// A job runner: everything the pool knows about executing work. The
/// engine installs [`crate::execute::execute`]; tests inject hostile
/// runners (panicking, flaky, slow) to exercise the scheduler itself.
pub type Runner = dyn Fn(&Job) -> Result<(JobReport, StageTimes), JobError> + Send + Sync;

/// Pool sizing, retry and deadline policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads. Clamped to at least 1.
    pub workers: usize,
    /// Extra attempts after a retryable failure (0 = fail fast).
    pub retries: u32,
    /// Base backoff before the first retry, ms; doubles per retry.
    /// 0 disables backoff (retries are immediate).
    pub backoff_base_ms: u64,
    /// Hard cap on any single backoff sleep, ms.
    pub backoff_max_ms: u64,
    /// Soft per-attempt deadline, ms: an attempt that runs longer is
    /// discarded as a retryable [`JobError::Timeout`]. 0 = unbounded.
    pub soft_deadline_ms: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: default_workers(),
            retries: 1,
            backoff_base_ms: 25,
            backoff_max_ms: 1_000,
            soft_deadline_ms: 0,
        }
    }
}

/// The backoff to sleep before retry number `attempt` (the attempt just
/// failed): exponential in the attempt, capped at `max_ms`, plus a
/// deterministic jitter drawn from `(job_key, attempt)` so that a herd
/// of identical-phase retries decorrelates — but identically for every
/// run, keeping the schedule reproducible.
pub fn backoff_delay_ms(base_ms: u64, max_ms: u64, job_key: &str, attempt: u32) -> u64 {
    if base_ms == 0 || max_ms == 0 {
        return 0;
    }
    let exponent = attempt.saturating_sub(1).min(16);
    let exp = base_ms.saturating_mul(1u64 << exponent).min(max_ms);
    let seed = fnv1a64(job_key.as_bytes(), 0x9ae1_6a3b_2f90_404f).wrapping_add(attempt as u64);
    let jitter = Rng64::seed_from_u64(seed).gen_range(exp as usize / 2 + 1) as u64;
    (exp + jitter).min(max_ms)
}

/// Locks `mutex`, recovering from poison instead of panicking.
///
/// Every mutex in this crate guards plain values (a channel endpoint, a
/// handle list, a counter struct) whose invariants hold across any
/// single operation — no holder performs a multi-step update that a
/// panic could leave half-done. Job panics in particular are caught by
/// `catch_unwind` *before* any lock is taken, so a poisoned lock here
/// means a panic in unrelated code while merely reading or swapping the
/// value. Recovering is therefore always sound, and strictly better
/// than cascading one thread's panic into every worker and the serve
/// loop.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The machine's available parallelism (≥ 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// What the pool sends back for one submitted job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The report, or why there is none.
    pub result: Result<JobReport, JobError>,
    /// Attempts made (0 if the job never started).
    pub attempts: u32,
    /// Wall time spent executing this job (all attempts), ms.
    pub exec_ms: f64,
    /// Wall time spent sleeping in retry backoff, ms.
    pub backoff_ms: f64,
    /// Faults injected into this job by the active [`FaultPlan`].
    pub injected_faults: u32,
    /// Per-stage wall time of the successful attempt.
    pub stages: StageTimes,
}

impl JobOutcome {
    fn terminal(result: Result<JobReport, JobError>) -> Self {
        JobOutcome {
            result,
            attempts: 0,
            exec_ms: 0.0,
            backoff_ms: 0.0,
            injected_faults: 0,
            stages: StageTimes::default(),
        }
    }
}

struct Task {
    job: Job,
    reply: mpsc::Sender<JobOutcome>,
    /// When the task entered the queue — dequeue-time minus this is the
    /// queue latency the `jobs.queue_wait` histogram records.
    submitted: Instant,
    /// Per-job soft deadline override, ms. 0 falls back to
    /// [`PoolConfig::soft_deadline_ms`]. This is how a propagated client
    /// deadline (see `server.rs`) reaches the retry machinery: an attempt
    /// that overruns the remaining budget dies as a retryable
    /// [`JobError::Timeout`] instead of burning a worker on dead work.
    deadline_ms: u64,
}

/// Liveness state one worker publishes for the watchdog: the time of its
/// last sign of life (ms since the pool epoch) and whether it currently
/// holds a job. Idle workers are parked in `recv()` and do not beat, so
/// stall detection only ever considers busy workers.
#[derive(Debug, Default)]
struct WorkerStatus {
    heartbeat_ms: AtomicU64,
    busy: AtomicBool,
}

impl WorkerStatus {
    fn beat(&self, epoch: Instant) {
        self.heartbeat_ms
            .store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }
}

/// One worker's liveness as seen from outside the pool (the supervision
/// layer's view; see [`WorkerPool::heartbeats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHeartbeat {
    /// Worker index (matches the `tdsigma-job-worker-<i>` thread name).
    pub worker: usize,
    /// Whether the worker currently holds a job.
    pub busy: bool,
    /// Milliseconds since the worker last showed a sign of life. Only
    /// meaningful for busy workers — an idle worker's clock keeps
    /// counting from its last job.
    pub age_ms: u64,
}

/// A fixed set of worker threads executing submitted jobs.
pub struct WorkerPool {
    tx: Mutex<Option<mpsc::Sender<Task>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    cancel: Arc<AtomicBool>,
    workers: usize,
    /// Per-worker liveness, indexed like the worker threads.
    status: Vec<Arc<WorkerStatus>>,
    /// The zero point the heartbeat clocks count from.
    epoch: Instant,
}

impl WorkerPool {
    /// Spawns the workers with no fault injection.
    pub fn new(config: PoolConfig, runner: Arc<Runner>) -> Self {
        WorkerPool::with_faults(config, runner, FaultPlan::none())
    }

    /// Spawns the workers with a fault-injection plan consulted before
    /// every attempt (the empty plan injects nothing).
    pub fn with_faults(config: PoolConfig, runner: Arc<Runner>, faults: FaultPlan) -> Self {
        let workers = config.workers.max(1);
        let (tx, rx) = mpsc::channel::<Task>();
        let rx = Arc::new(Mutex::new(rx));
        let cancel = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let status: Vec<Arc<WorkerStatus>> = (0..workers)
            .map(|_| Arc::new(WorkerStatus::default()))
            .collect();
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cancel = Arc::clone(&cancel);
                let runner = Arc::clone(&runner);
                let config = config.clone();
                let status = Arc::clone(&status[i]);
                // Invariant, not a hot path: thread spawn happens once at
                // pool construction and fails only when the OS is out of
                // threads/memory — a state no structured error could make
                // survivable. Panicking here is deliberate and documented.
                std::thread::Builder::new()
                    .name(format!("tdsigma-job-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &cancel, &runner, &config, faults, &status, epoch)
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            handles: Mutex::new(handles),
            cancel,
            workers,
            status,
            epoch,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Every worker's liveness, for health endpoints and watchdogs.
    pub fn heartbeats(&self) -> Vec<WorkerHeartbeat> {
        let now_ms = self.epoch.elapsed().as_millis() as u64;
        self.status
            .iter()
            .enumerate()
            .map(|(worker, s)| WorkerHeartbeat {
                worker,
                busy: s.busy.load(Ordering::Relaxed),
                age_ms: now_ms.saturating_sub(s.heartbeat_ms.load(Ordering::Relaxed)),
            })
            .collect()
    }

    /// Number of workers that hold a job but have shown no sign of life
    /// for longer than `threshold_ms` — the watchdog's definition of a
    /// stalled worker. Idle workers never count (they beat only around
    /// jobs). `threshold_ms == 0` disables detection.
    pub fn stalled(&self, threshold_ms: u64) -> usize {
        if threshold_ms == 0 {
            return 0;
        }
        self.heartbeats()
            .iter()
            .filter(|h| h.busy && h.age_ms > threshold_ms)
            .count()
    }

    /// Submits a job; the returned receiver yields exactly one
    /// [`JobOutcome`] (immediately, if the pool is already closed).
    pub fn submit(&self, job: Job) -> mpsc::Receiver<JobOutcome> {
        self.submit_with_deadline(job, 0)
    }

    /// Like [`WorkerPool::submit`], but with a per-job soft deadline in
    /// ms that overrides [`PoolConfig::soft_deadline_ms`] when non-zero.
    /// The deadline never enters the job itself (the content address and
    /// the report are deadline-blind); it only bounds attempt wall time.
    pub fn submit_with_deadline(&self, job: Job, deadline_ms: u64) -> mpsc::Receiver<JobOutcome> {
        let (reply, rx) = mpsc::channel();
        obs::counter("jobs.submitted").inc();
        match &*lock_unpoisoned(&self.tx) {
            Some(tx) => {
                let task = Task {
                    job,
                    reply,
                    submitted: Instant::now(),
                    deadline_ms,
                };
                if let Err(mpsc::SendError(task)) = tx.send(task) {
                    let _ = task
                        .reply
                        .send(JobOutcome::terminal(Err(JobError::PoolClosed)));
                }
            }
            None => {
                let _ = reply.send(JobOutcome::terminal(Err(JobError::PoolClosed)));
            }
        }
        rx
    }

    /// Requests cooperative cancellation: queued jobs resolve as
    /// [`JobError::Canceled`]; in-flight jobs run to completion.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn is_canceled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Closes the queue and joins every worker. Idempotent.
    pub fn shutdown(&self) {
        lock_unpoisoned(&self.tx).take();
        let handles: Vec<_> = lock_unpoisoned(&self.handles).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Graceful drain: in-flight jobs finish, queued jobs resolve as
    /// [`JobError::Canceled`], then every worker is joined. After this
    /// returns, new submissions report [`JobError::PoolClosed`].
    pub fn drain(&self) {
        self.cancel();
        self.shutdown();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("canceled", &self.is_canceled())
            .finish()
    }
}

/// Sleeps up to `ms`, waking every few ms to honor cancellation.
/// Returns the time actually slept, ms.
fn cancellable_sleep(ms: u64, cancel: &AtomicBool) -> f64 {
    let started = Instant::now();
    let deadline = Duration::from_millis(ms);
    while started.elapsed() < deadline {
        if cancel.load(Ordering::SeqCst) {
            break;
        }
        let left = deadline - started.elapsed();
        std::thread::sleep(left.min(Duration::from_millis(5)));
    }
    started.elapsed().as_secs_f64() * 1e3
}

#[allow(clippy::too_many_lines)]
fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Task>>,
    cancel: &AtomicBool,
    runner: &Arc<Runner>,
    config: &PoolConfig,
    faults: FaultPlan,
    status: &WorkerStatus,
    epoch: Instant,
) {
    // Metric handles fetched once per worker: the per-job hot path below
    // is atomic adds only.
    let queue_wait = obs::histogram("jobs.queue_wait");
    let backoff_hist = obs::histogram("jobs.backoff");
    let retries_ctr = obs::counter("jobs.retries");
    let timeouts_ctr = obs::counter("jobs.timeouts");
    let panics_ctr = obs::counter("jobs.panics");
    let faults_ctr = obs::counter("jobs.faults_injected");
    loop {
        // Hold the lock only for the dequeue.
        let task = match lock_unpoisoned(rx).recv() {
            Ok(task) => task,
            Err(_) => break, // queue closed: pool is shutting down
        };
        queue_wait.record(task.submitted.elapsed());
        status.busy.store(true, Ordering::Relaxed);
        status.beat(epoch);
        if cancel.load(Ordering::SeqCst) {
            let _ = task
                .reply
                .send(JobOutcome::terminal(Err(JobError::Canceled)));
            status.busy.store(false, Ordering::Relaxed);
            continue;
        }
        let key = task.job.key();
        // The effective soft deadline: a per-task override (propagated
        // client budget) beats the pool-wide policy.
        let soft_deadline_ms = if task.deadline_ms > 0 {
            task.deadline_ms
        } else {
            config.soft_deadline_ms
        };
        let started = Instant::now();
        let mut attempts = 0u32;
        let mut backoff_ms = 0.0f64;
        let mut injected_faults = 0u32;
        let finish = |result: Result<JobReport, JobError>,
                      attempts: u32,
                      backoff_ms: f64,
                      injected_faults: u32,
                      stages: StageTimes| JobOutcome {
            result,
            attempts,
            exec_ms: (started.elapsed().as_secs_f64() * 1e3 - backoff_ms).max(0.0),
            backoff_ms,
            injected_faults,
            stages,
        };
        let outcome = loop {
            attempts += 1;
            // One beat per attempt: retries of a live job keep the
            // watchdog quiet; an attempt that hangs stops beating.
            status.beat(epoch);
            let attempt_started = Instant::now();
            let injected = faults.attempt_fault(&key, attempts);
            let latency_ms = faults.attempt_latency_ms(&key, attempts);
            if injected.is_some() || latency_ms > 0 {
                injected_faults += 1;
                faults_ctr.inc();
            }
            if latency_ms > 0 {
                std::thread::sleep(Duration::from_millis(latency_ms));
            }
            let attempt = {
                let _span = obs::span("job.attempt")
                    .attr("job", &key)
                    .attr("attempt", attempts);
                catch_unwind(AssertUnwindSafe(|| match injected {
                    Some(AttemptFault::Panic) => panic!("chaos: injected worker panic"),
                    Some(AttemptFault::Transient) => Err(JobError::Transient(
                        "chaos: injected transient failure".into(),
                    )),
                    None => runner(&task.job),
                }))
            };
            // Soft deadline: a successful attempt that overran is
            // discarded as a retryable timeout (the report of a job that
            // blew its budget is suspect — often it only finished because
            // injected latency or a stalled resource released late).
            let attempt = match attempt {
                Ok(Ok(ok))
                    if soft_deadline_ms > 0
                        && attempt_started.elapsed().as_millis() as u64 > soft_deadline_ms =>
                {
                    drop(ok);
                    timeouts_ctr.inc();
                    Ok(Err(JobError::Timeout { soft_deadline_ms }))
                }
                other => other,
            };
            let may_retry = attempts <= config.retries && !cancel.load(Ordering::SeqCst);
            let retry_backoff = |backoff_ms: &mut f64| {
                let delay = backoff_delay_ms(
                    config.backoff_base_ms,
                    config.backoff_max_ms,
                    &key,
                    attempts,
                );
                if delay > 0 {
                    let slept = cancellable_sleep(delay, cancel);
                    *backoff_ms += slept;
                    backoff_hist.record_us((slept * 1e3) as u64);
                }
                // Canceled mid-backoff: give up instead of re-running.
                !cancel.load(Ordering::SeqCst)
            };
            match attempt {
                Ok(Ok((report, stages))) => {
                    break finish(Ok(report), attempts, backoff_ms, injected_faults, stages);
                }
                Ok(Err(e)) if e.is_retryable() && may_retry => {
                    if retry_backoff(&mut backoff_ms) {
                        retries_ctr.inc();
                        continue;
                    }
                    break finish(
                        Err(JobError::Canceled),
                        attempts,
                        backoff_ms,
                        injected_faults,
                        StageTimes::default(),
                    );
                }
                Ok(Err(e)) => {
                    let result = match e {
                        JobError::Invalid(m) => Err(JobError::Invalid(m)),
                        JobError::Timeout { soft_deadline_ms } => {
                            Err(JobError::Timeout { soft_deadline_ms })
                        }
                        JobError::Failed { message, .. } => {
                            Err(JobError::Failed { attempts, message })
                        }
                        other => Err(JobError::Failed {
                            attempts,
                            message: other.to_string(),
                        }),
                    };
                    break finish(
                        result,
                        attempts,
                        backoff_ms,
                        injected_faults,
                        StageTimes::default(),
                    );
                }
                Err(panic) => {
                    panics_ctr.inc();
                    if may_retry && retry_backoff(&mut backoff_ms) {
                        retries_ctr.inc();
                        continue;
                    }
                    let result = if cancel.load(Ordering::SeqCst) && may_retry {
                        Err(JobError::Canceled)
                    } else {
                        Err(JobError::Failed {
                            attempts,
                            message: format!("panic: {}", panic_message(&*panic)),
                        })
                    };
                    break finish(
                        result,
                        attempts,
                        backoff_ms,
                        injected_faults,
                        StageTimes::default(),
                    );
                }
            }
        };
        // A dropped receiver just means the caller stopped waiting.
        let _ = task.reply.send(outcome);
        status.beat(epoch);
        status.busy.store(false, Ordering::Relaxed);
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn dummy_report(job: &Job) -> JobReport {
        JobReport {
            key: job.key(),
            job: job.clone(),
            fin_hz: 1e6,
            sndr_db: 60.0,
            enob: 9.7,
            power_mw: None,
            digital_fraction: None,
            area_mm2: None,
            fom_fj: None,
            timing_slack_ps: None,
        }
    }

    fn job_with_seed(seed: u64) -> Job {
        let mut job = Job::sim(40.0, 750e6, 5e6);
        job.seed = seed;
        job
    }

    #[test]
    fn executes_and_replies() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 2,
                retries: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| Ok((dummy_report(job), StageTimes::default()))),
        );
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.result.unwrap().sndr_db, 60.0);
    }

    #[test]
    fn panic_is_isolated_to_the_job() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 2,
                retries: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| {
                if job.seed == 13 {
                    panic!("injected fault on die 13");
                }
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let bad = pool.submit(job_with_seed(13));
        let good: Vec<_> = (0..4).map(|s| pool.submit(job_with_seed(s))).collect();
        match bad.recv().unwrap().result {
            Err(JobError::Failed { message, .. }) => {
                assert!(message.contains("injected fault"), "message: {message}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        for rx in good {
            assert!(
                rx.recv().unwrap().result.is_ok(),
                "pool must survive the panic"
            );
        }
    }

    #[test]
    fn retries_recover_flaky_jobs_and_are_counted() {
        let failures = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&failures);
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 2,
                backoff_base_ms: 1,
                ..PoolConfig::default()
            },
            Arc::new(move |job: &Job| {
                if f.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("flaky");
                }
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let outcome = pool.submit(job_with_seed(7)).recv().unwrap();
        assert_eq!(outcome.attempts, 3);
        assert!(outcome.result.is_ok());
    }

    #[test]
    fn invalid_errors_are_not_retried() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 5,
                ..PoolConfig::default()
            },
            Arc::new(move |_: &Job| {
                c.fetch_add(1, Ordering::SeqCst);
                Err(JobError::Invalid("bad spec".into()))
            }),
        );
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert!(matches!(outcome.result, Err(JobError::Invalid(_))));
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "validation failures never retry"
        );
    }

    #[test]
    fn cancellation_drains_queued_jobs() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let receivers: Vec<_> = (0..6).map(|s| pool.submit(job_with_seed(s))).collect();
        pool.cancel();
        let outcomes: Vec<_> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        let canceled = outcomes
            .iter()
            .filter(|o| matches!(o.result, Err(JobError::Canceled)))
            .count();
        assert!(
            canceled >= 4,
            "queued jobs must drain as canceled, got {canceled}"
        );
    }

    #[test]
    fn backoff_schedule_is_deterministic_exponential_and_capped() {
        let key = "00112233445566778899aabbccddeeff";
        let schedule: Vec<u64> = (1..=8).map(|a| backoff_delay_ms(10, 200, key, a)).collect();
        let again: Vec<u64> = (1..=8).map(|a| backoff_delay_ms(10, 200, key, a)).collect();
        assert_eq!(schedule, again, "same key, same schedule");
        // Exponential envelope with jitter: delay_n ∈ [exp_n, 1.5·exp_n],
        // capped at max.
        for (i, &d) in schedule.iter().enumerate() {
            let exp = (10u64 << i).min(200);
            assert!(d >= exp, "attempt {}: {d} < {exp}", i + 1);
            assert!(
                d <= (exp + exp / 2).min(200),
                "attempt {}: {d} too large",
                i + 1
            );
        }
        assert!(schedule.iter().all(|&d| d <= 200), "cap must hold");
        // A different job jitters differently (with overwhelming
        // probability at least one attempt differs).
        let other: Vec<u64> = (1..=8)
            .map(|a| backoff_delay_ms(10, 200, "ffeeddccbbaa99887766554433221100", a))
            .collect();
        assert_ne!(schedule, other, "jitter must depend on the job key");
        // Disabled backoff is exactly zero.
        assert_eq!(backoff_delay_ms(0, 200, key, 3), 0);
    }

    #[test]
    fn backoff_jitter_is_deterministic_across_job_seeds() {
        // The schedule is a pure function of (key, attempt): recomputing
        // the whole seed × attempt grid yields the identical grid, so a
        // resumed run (or another machine) sleeps the same milliseconds.
        let grid = |_: ()| -> Vec<Vec<u64>> {
            (0..32u64)
                .map(|seed| {
                    let key = job_with_seed(seed).key();
                    (1..=6)
                        .map(|a| backoff_delay_ms(25, 1_000, &key, a))
                        .collect()
                })
                .collect()
        };
        let first = grid(());
        assert_eq!(first, grid(()), "the grid must be a pure function");
        // And the herd decorrelates: no two seeds share a full schedule.
        let unique: std::collections::HashSet<&Vec<u64>> = first.iter().collect();
        assert_eq!(
            unique.len(),
            first.len(),
            "32 seeds must not collide on a whole schedule"
        );
        // Saturation edges: an absurd attempt number clamps at the cap
        // instead of overflowing, and a zero cap disables backoff.
        let key = job_with_seed(0).key();
        let huge = backoff_delay_ms(25, 1_000, &key, 1_000_000);
        assert!(huge <= 1_000, "cap must hold at saturation, got {huge}");
        assert!(huge > 0, "saturated backoff still sleeps");
        assert_eq!(backoff_delay_ms(25, 0, &key, 3), 0);
    }

    #[test]
    fn backoff_is_applied_between_retries() {
        let failures = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&failures);
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 2,
                backoff_base_ms: 20,
                backoff_max_ms: 100,
                ..PoolConfig::default()
            },
            Arc::new(move |job: &Job| {
                if f.fetch_add(1, Ordering::SeqCst) < 2 {
                    return Err(JobError::Transient("flaky resource".into()));
                }
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let job = job_with_seed(5);
        let expected: f64 = (1..=2)
            .map(|a| backoff_delay_ms(20, 100, &job.key(), a) as f64)
            .sum();
        let outcome = pool.submit(job).recv().unwrap();
        assert_eq!(outcome.attempts, 3);
        assert!(outcome.result.is_ok());
        assert!(
            outcome.backoff_ms >= expected * 0.9,
            "backoff {:.1} ms < expected {:.1} ms",
            outcome.backoff_ms,
            expected
        );
    }

    #[test]
    fn zero_retries_fail_fast_with_original_error() {
        let started = Instant::now();
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
                backoff_base_ms: 10_000, // must never be slept
                ..PoolConfig::default()
            },
            Arc::new(|_: &Job| Err(JobError::Transient("boom from the flow".into()))),
        );
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.backoff_ms, 0.0, "no retries means no backoff");
        match outcome.result {
            Err(JobError::Failed { attempts, message }) => {
                assert_eq!(attempts, 1);
                assert!(message.contains("boom from the flow"), "message: {message}");
            }
            other => panic!("expected Failed with original message, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "fail-fast must not sleep"
        );
    }

    #[test]
    fn soft_deadline_marks_overruns_as_timeouts() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
                soft_deadline_ms: 10,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| {
                std::thread::sleep(Duration::from_millis(40));
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        match outcome.result {
            Err(JobError::Timeout { soft_deadline_ms }) => assert_eq!(soft_deadline_ms, 10),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(JobError::Timeout {
            soft_deadline_ms: 10
        }
        .is_retryable());
    }

    #[test]
    fn per_job_deadline_overrides_pool_soft_deadline() {
        // Pool policy is unbounded; the submitted deadline is not.
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
                soft_deadline_ms: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| {
                std::thread::sleep(Duration::from_millis(40));
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let outcome = pool
            .submit_with_deadline(job_with_seed(1), 10)
            .recv()
            .unwrap();
        match outcome.result {
            Err(JobError::Timeout { soft_deadline_ms }) => assert_eq!(soft_deadline_ms, 10),
            other => panic!("expected Timeout from the per-job deadline, got {other:?}"),
        }
        // A generous per-job deadline leaves the job alone.
        let outcome = pool
            .submit_with_deadline(job_with_seed(2), 60_000)
            .recv()
            .unwrap();
        assert!(outcome.result.is_ok());
    }

    #[test]
    fn injected_faults_are_deterministic_and_survivable() {
        let run = || -> Vec<(bool, u32)> {
            let pool = WorkerPool::with_faults(
                PoolConfig {
                    workers: 2,
                    retries: 4,
                    backoff_base_ms: 1,
                    backoff_max_ms: 4,
                    ..PoolConfig::default()
                },
                Arc::new(|job: &Job| Ok((dummy_report(job), StageTimes::default()))),
                FaultPlan {
                    seed: 7,
                    panic_permille: 300,
                    transient_permille: 300,
                    ..FaultPlan::default()
                },
            );
            let receivers: Vec<_> = (0..16).map(|s| pool.submit(job_with_seed(s))).collect();
            receivers
                .into_iter()
                .map(|rx| {
                    let o = rx.recv().unwrap();
                    (o.result.is_ok(), o.attempts)
                })
                .collect()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "fault pattern must not depend on scheduling");
        assert!(
            a.iter().any(|&(_, attempts)| attempts > 1),
            "some jobs must have been hit"
        );
        assert!(
            a.iter().filter(|&&(ok, _)| ok).count() >= 12,
            "retries should win against a 30%/30% fault mix"
        );
    }

    #[test]
    fn drain_finishes_inflight_cancels_queued_and_closes() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| {
                std::thread::sleep(Duration::from_millis(20));
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        let receivers: Vec<_> = (0..6).map(|s| pool.submit(job_with_seed(s))).collect();
        pool.drain();
        let outcomes: Vec<_> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
        assert!(
            outcomes
                .iter()
                .all(|o| o.result.is_ok() || matches!(o.result, Err(JobError::Canceled))),
            "every job must resolve as finished or canceled"
        );
        assert!(
            outcomes
                .iter()
                .any(|o| matches!(o.result, Err(JobError::Canceled))),
            "queued jobs must drain as canceled"
        );
        let late = pool.submit(job_with_seed(99)).recv().unwrap();
        assert!(matches!(late.result, Err(JobError::PoolClosed)));
    }

    #[test]
    fn heartbeats_expose_stalled_workers() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 2,
                retries: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| {
                if job.seed == 1 {
                    // A "stalled" worker: holds the job far past the
                    // watchdog threshold used below.
                    std::thread::sleep(Duration::from_millis(300));
                }
                Ok((dummy_report(job), StageTimes::default()))
            }),
        );
        assert_eq!(pool.heartbeats().len(), 2);
        assert_eq!(pool.stalled(50), 0, "idle pool has no stalls");

        let slow = pool.submit(job_with_seed(1));
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(pool.stalled(50), 1, "the hung worker must be visible");
        assert_eq!(pool.stalled(0), 0, "threshold 0 disables detection");
        let busy: Vec<bool> = pool.heartbeats().iter().map(|h| h.busy).collect();
        assert_eq!(busy.iter().filter(|&&b| b).count(), 1);

        let _ = slow.recv().unwrap();
        // The worker beat on completion; give the flag a moment to settle.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(pool.stalled(50), 0, "recovered worker stops counting");
    }

    #[test]
    fn submit_after_shutdown_reports_closed() {
        let pool = WorkerPool::new(
            PoolConfig {
                workers: 1,
                retries: 0,
                ..PoolConfig::default()
            },
            Arc::new(|job: &Job| Ok((dummy_report(job), StageTimes::default()))),
        );
        pool.shutdown();
        let outcome = pool.submit(job_with_seed(1)).recv().unwrap();
        assert!(matches!(outcome.result, Err(JobError::PoolClosed)));
    }
}
