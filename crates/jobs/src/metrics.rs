//! Wall-clock and outcome accounting for batches of jobs.
//!
//! Timing lives here — and only here — because [`crate::JobReport`] must
//! stay a pure function of the job parameters (see the bit-identical
//! guarantee). Metrics are what the operator reads at the end of a batch:
//! how much work ran, how much the cache absorbed, and where the time
//! went per stage.

use std::fmt;

/// Wall time spent in each stage of one job execution, milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Spec materialization and (for full flows) netlist elaboration
    /// up-front work before the simulator starts.
    pub build_ms: f64,
    /// The transient simulation / the synthesis+simulation flow body.
    pub execute_ms: f64,
    /// Spectral analysis and report assembly.
    pub analyze_ms: f64,
}

impl StageTimes {
    /// Sum of all stages.
    pub fn total_ms(&self) -> f64 {
        self.build_ms + self.execute_ms + self.analyze_ms
    }

    /// Accumulates another sample into this one.
    pub fn accumulate(&mut self, other: &StageTimes) {
        self.build_ms += other.build_ms;
        self.execute_ms += other.execute_ms;
        self.analyze_ms += other.analyze_ms;
    }
}

/// Outcome counters and timing for one batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchMetrics {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs answered from the result cache.
    pub cache_hits: usize,
    /// Jobs answered by piggy-backing on an identical in-batch job.
    pub deduped: usize,
    /// Jobs that actually executed a flow.
    pub executed: usize,
    /// Jobs that failed after all retries.
    pub failed: usize,
    /// Extra attempts spent on retries across the batch.
    pub retried: usize,
    /// Jobs abandoned by cancellation.
    pub canceled: usize,
    /// Cache artifacts found corrupt during this batch, renamed to
    /// `*.quarantine` and recomputed. Non-zero means the result store
    /// took damage — silent before, visible now.
    pub cache_quarantined: usize,
    /// Cache artifacts stamped by a different engine fingerprint,
    /// demoted to the `stale/` tier and recomputed. Non-zero means the
    /// warm cache was written by another binary — version skew that
    /// used to replay silently.
    pub cache_stale: usize,
    /// Faults injected by the active fault plan (0 without `--chaos-seed`).
    pub faults_injected: usize,
    /// Completed jobs whose report could not be persisted to the disk
    /// cache (the job still succeeded; the result is just uncached, so a
    /// resume would recompute it).
    pub cache_store_failures: usize,
    /// Total wall time spent sleeping in retry backoff, ms.
    pub backoff_ms_total: f64,
    /// End-to-end batch wall time, ms.
    pub wall_ms: f64,
    /// Sum of per-job execution wall time, ms (parallel speedup shows as
    /// `exec_ms_total / wall_ms` approaching the worker count).
    pub exec_ms_total: f64,
    /// Slowest single job, ms.
    pub exec_ms_max: f64,
    /// Per-stage wall time summed over executed jobs.
    pub stages: StageTimes,
}

impl BatchMetrics {
    /// Batch throughput in jobs per second of wall time.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.jobs as f64 / (self.wall_ms / 1e3)
        }
    }

    /// Fraction of jobs served from the cache (0–1).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.jobs as f64
        }
    }

    /// Effective parallelism achieved: total compute time over wall time.
    pub fn speedup(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            0.0
        } else {
            self.exec_ms_total / self.wall_ms
        }
    }

    /// Adds this batch's outcome counters to the process-wide
    /// [`tdsigma_obs`] registry, under the same `jobs.*` namespace the
    /// pool and cache report into live.
    ///
    /// Only the fields that nothing else counts at the source are added
    /// here: retries, timeouts, panics, injected faults, backoff sleeps
    /// and quarantines are recorded by the pool/cache as they happen, so
    /// re-adding them would double-count.
    pub fn publish(&self) {
        use tdsigma_obs as obs;
        obs::counter("jobs.cache_hits").add(self.cache_hits as u64);
        obs::counter("jobs.deduped").add(self.deduped as u64);
        obs::counter("jobs.executed").add(self.executed as u64);
        obs::counter("jobs.failed").add(self.failed as u64);
        obs::counter("jobs.canceled").add(self.canceled as u64);
    }
}

impl fmt::Display for BatchMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch: {} jobs in {:.0} ms ({:.2} jobs/s) — {} executed, {} cache hits ({:.0} %), \
             {} deduped, {} failed, {} retried, {} canceled",
            self.jobs,
            self.wall_ms,
            self.jobs_per_sec(),
            self.executed,
            self.cache_hits,
            100.0 * self.cache_hit_rate(),
            self.deduped,
            self.failed,
            self.retried,
            self.canceled,
        )?;
        write!(
            f,
            "time: compute {:.0} ms (max job {:.0} ms, effective parallelism {:.2}x) — \
             build {:.0} ms, execute {:.0} ms, analyze {:.0} ms",
            self.exec_ms_total,
            self.exec_ms_max,
            self.speedup(),
            self.stages.build_ms,
            self.stages.execute_ms,
            self.stages.analyze_ms,
        )?;
        if self.cache_quarantined > 0
            || self.cache_stale > 0
            || self.faults_injected > 0
            || self.backoff_ms_total > 0.0
            || self.cache_store_failures > 0
        {
            write!(
                f,
                "\nresilience: {} cache artifacts quarantined, {} stale, {} faults injected, \
                 {:.0} ms retry backoff, {} cache store failures",
                self.cache_quarantined,
                self.cache_stale,
                self.faults_injected,
                self.backoff_ms_total,
                self.cache_store_failures,
            )?;
        }
        Ok(())
    }
}

/// One backend's dispatch counters, snapshotted for end-of-sweep
/// reporting (the live values stream into `tdsigma-obs` under
/// `dispatch.<addr>.…`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendDispatchStats {
    /// Backend address (`host:port`).
    pub addr: String,
    /// Jobs sent to this backend.
    pub dispatched: u64,
    /// Backend-class failures (unreachable, deadline, corrupt frame).
    pub failed: u64,
    /// Jobs that moved on to another candidate after failing here.
    pub retried: u64,
    /// Hedge duplicates sent to this backend.
    pub hedged: u64,
    /// Structured busy/shed rejections honored as cooldowns (never
    /// counted toward the breaker — the backend was alive, just full).
    pub shed_deferred: u64,
    /// Times this backend was excluded for advertising an engine
    /// fingerprint different from the dispatching process's. Non-zero
    /// means a mixed-version fleet: the backend ran no jobs.
    pub version_skew: u64,
    /// Times this backend's report bytes disagreed with a redundant
    /// recomputation. Non-zero means the backend was caught lying and
    /// is integrity-quarantined for the rest of the run.
    pub integrity_failures: u64,
    /// Whether the breaker was anything but closed at snapshot time.
    pub breaker_open: bool,
}

/// Fleet-level dispatch outcome: what ran where, and how degraded the
/// run was. `local_fallbacks > 0` means the whole fleet was unavailable
/// for at least one job — the signal an operator investigates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchSummary {
    /// Per-backend counters, in rotation order.
    pub backends: Vec<BackendDispatchStats>,
    /// Jobs that ran in-process because every backend was down/skipped.
    pub local_fallbacks: u64,
    /// Whether `local` was an intentional fleet member (its executions
    /// are then load sharing, not degradation).
    pub local_in_rotation: bool,
    /// Remote results accepted without a wire attestation (backends
    /// predating the attestation sibling). Non-zero means part of the
    /// fleet's payloads were protected only by the frame crc.
    pub unattested: u64,
}

impl DispatchSummary {
    /// Whether any job had to degrade to last-resort local execution.
    pub fn degraded(&self) -> bool {
        self.local_fallbacks > 0
    }
}

impl fmt::Display for DispatchSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dispatch:")?;
        for b in &self.backends {
            write!(
                f,
                "\n  {} — {} dispatched, {} failed, {} retried, {} hedged, breaker {}",
                b.addr,
                b.dispatched,
                b.failed,
                b.retried,
                b.hedged,
                if b.breaker_open { "OPEN" } else { "closed" },
            )?;
            if b.shed_deferred > 0 {
                write!(f, ", {} shed (deferred)", b.shed_deferred)?;
            }
            if b.version_skew > 0 {
                write!(f, ", version skew ×{}", b.version_skew)?;
            }
            if b.integrity_failures > 0 {
                write!(f, ", integrity ×{}", b.integrity_failures)?;
            }
        }
        if self.local_in_rotation {
            write!(f, "\n  local — rotation member")?;
        }
        if self.unattested > 0 {
            write!(
                f,
                "\n  {} result(s) accepted unattested (pre-attestation backend)",
                self.unattested
            )?;
        }
        let skewed = self.backends.iter().filter(|b| b.version_skew > 0).count();
        if skewed > 0 {
            write!(
                f,
                "\n  DEGRADED: version_skew — {skewed} backend(s) excluded for engine \
                 fingerprint mismatch"
            )?;
        }
        let lying = self
            .backends
            .iter()
            .filter(|b| b.integrity_failures > 0)
            .count();
        if lying > 0 {
            write!(
                f,
                "\n  DEGRADED: integrity — {lying} backend(s) quarantined for report bytes \
                 disagreeing with redundant recomputation"
            )?;
        }
        if self.degraded() {
            write!(
                f,
                "\n  DEGRADED: {} job(s) fell back to local execution",
                self.local_fallbacks
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero() {
        let m = BatchMetrics::default();
        assert_eq!(m.jobs_per_sec(), 0.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.speedup(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let m = BatchMetrics {
            jobs: 8,
            cache_hits: 2,
            executed: 6,
            wall_ms: 2000.0,
            exec_ms_total: 6000.0,
            ..BatchMetrics::default()
        };
        assert!((m.jobs_per_sec() - 4.0).abs() < 1e-12);
        assert!((m.cache_hit_rate() - 0.25).abs() < 1e-12);
        assert!((m.speedup() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stages_accumulate() {
        let mut a = StageTimes {
            build_ms: 1.0,
            execute_ms: 2.0,
            analyze_ms: 3.0,
        };
        a.accumulate(&StageTimes {
            build_ms: 0.5,
            execute_ms: 0.5,
            analyze_ms: 0.5,
        });
        assert!((a.total_ms() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes() {
        let m = BatchMetrics {
            jobs: 3,
            wall_ms: 10.0,
            ..BatchMetrics::default()
        };
        let text = m.to_string();
        assert!(text.contains("3 jobs"));
        assert!(text.contains("cache hits"));
        assert!(
            !text.contains("resilience"),
            "healthy batches stay quiet about faults"
        );
    }

    #[test]
    fn dispatch_summary_displays_degradation() {
        let s = DispatchSummary {
            backends: vec![BackendDispatchStats {
                addr: "10.0.0.7:4000".into(),
                dispatched: 12,
                failed: 3,
                retried: 3,
                hedged: 1,
                shed_deferred: 2,
                version_skew: 0,
                integrity_failures: 0,
                breaker_open: true,
            }],
            local_fallbacks: 2,
            local_in_rotation: false,
            unattested: 0,
        };
        assert!(s.degraded());
        let text = s.to_string();
        assert!(text.contains("10.0.0.7:4000"), "{text}");
        assert!(text.contains("breaker OPEN"), "{text}");
        assert!(text.contains("2 shed (deferred)"), "{text}");
        assert!(text.contains("DEGRADED: 2 job(s)"), "{text}");
        assert!(!text.contains("version_skew"), "{text}");
        let healthy = DispatchSummary::default();
        assert!(!healthy.degraded());
        assert!(!healthy.to_string().contains("DEGRADED"));
    }

    #[test]
    fn dispatch_summary_flags_version_skew() {
        let s = DispatchSummary {
            backends: vec![
                BackendDispatchStats {
                    addr: "10.0.0.7:4000".into(),
                    dispatched: 12,
                    failed: 0,
                    retried: 0,
                    hedged: 0,
                    shed_deferred: 0,
                    version_skew: 0,
                    integrity_failures: 0,
                    breaker_open: false,
                },
                BackendDispatchStats {
                    addr: "10.0.0.8:4000".into(),
                    dispatched: 0,
                    failed: 3,
                    retried: 0,
                    hedged: 0,
                    shed_deferred: 0,
                    version_skew: 3,
                    integrity_failures: 0,
                    breaker_open: true,
                },
            ],
            local_fallbacks: 0,
            local_in_rotation: false,
            unattested: 0,
        };
        let text = s.to_string();
        assert!(text.contains("version skew ×3"), "{text}");
        assert!(
            text.contains("DEGRADED: version_skew — 1 backend(s) excluded"),
            "{text}"
        );
        assert!(!text.contains("integrity"), "{text}");
        assert!(!text.contains("unattested"), "{text}");
    }

    #[test]
    fn dispatch_summary_flags_integrity_quarantine() {
        let s = DispatchSummary {
            backends: vec![
                BackendDispatchStats {
                    addr: "10.0.0.7:4000".into(),
                    dispatched: 12,
                    failed: 0,
                    retried: 0,
                    hedged: 0,
                    shed_deferred: 0,
                    version_skew: 0,
                    integrity_failures: 0,
                    breaker_open: false,
                },
                BackendDispatchStats {
                    addr: "10.0.0.8:4000".into(),
                    dispatched: 5,
                    failed: 0,
                    retried: 0,
                    hedged: 0,
                    shed_deferred: 0,
                    version_skew: 0,
                    integrity_failures: 2,
                    breaker_open: false,
                },
            ],
            local_fallbacks: 0,
            local_in_rotation: false,
            unattested: 3,
        };
        let text = s.to_string();
        assert!(text.contains("integrity ×2"), "{text}");
        assert!(
            text.contains("DEGRADED: integrity — 1 backend(s) quarantined"),
            "{text}"
        );
        assert!(text.contains("3 result(s) accepted unattested"), "{text}");
    }

    #[test]
    fn display_surfaces_degradation() {
        let m = BatchMetrics {
            jobs: 3,
            cache_quarantined: 2,
            faults_injected: 5,
            backoff_ms_total: 40.0,
            ..BatchMetrics::default()
        };
        let text = m.to_string();
        assert!(text.contains("2 cache artifacts quarantined"), "{text}");
        assert!(text.contains("5 faults injected"), "{text}");
    }
}
