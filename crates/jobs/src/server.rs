//! `tdsigma serve`: a line-protocol TCP front end over an [`Engine`].
//!
//! Protocol: one JSON request per line in, one JSON response per line
//! out. A request is either a command object —
//!
//! ```text
//! {"cmd":"ping"}      → {"ok":true,"pong":true}
//! {"cmd":"stats"}     → {"ok":true,"stats":{…}}
//! {"cmd":"run","job":{…}} → {"ok":true,"report":{…}}
//! {"cmd":"shutdown"}  → {"ok":true,"bye":true}   (then the server stops)
//! ```
//!
//! — or a job request in operator-friendly units (MHz, not Hz):
//!
//! ```text
//! {"kind":"sim","node":40,"fs_mhz":750,"bw_mhz":5,"seed":7}
//!   → {"ok":true,"report":{…}}
//! ```
//!
//! Only `node`, `fs_mhz` and `bw_mhz` are required; everything else
//! defaults to the paper's operating point (see [`Job::sim`]). Malformed
//! requests get `{"ok":false,"error":"…"}` and the connection stays open.
//! Results are cached exactly like sweep results: asking the same
//! question twice executes one flow.
//!
//! The `run` command carries a full [`Job`] in its canonical Hz-units
//! JSON form ([`Job::to_json`]) — the machine-to-machine path the
//! distributed dispatcher uses, where every parameter must round-trip
//! bit-exactly so local and remote execution share one cache address.
//!
//! `shutdown` is **disabled by default**: any LAN client can reach the
//! socket, and a shared backend must not be killable by one of them.
//! Enable it explicitly ([`ServerConfig::allow_remote_shutdown`], CLI
//! `--allow-remote-shutdown`); otherwise the command answers
//! `{"ok":false,"error":"shutdown disabled"}` and the server keeps
//! serving.
//!
//! **Admission control.** Every job request passes a three-stage gate
//! before touching the engine: a per-client token-bucket quota (clients
//! name themselves with a `"client"` field; [`ServerConfig::quota_burst`]),
//! queue-depth/stalled-worker–aware load shedding
//! ([`ServerConfig::max_queue_per_worker`]), and a deadline feasibility
//! check (`"deadline_ms"`, the client's remaining budget). Overload
//! rejections are structured — `{"ok":false,"busy":true,
//! "retry_after_ms":N,…}` with `quota` or `shed` markers — so a client
//! can distinguish "you are over quota" from "everyone must back off"
//! and knows exactly when to come back. An admitted deadline becomes the
//! job's soft deadline in the pool, so work whose client has given up is
//! cut off instead of burning a worker. `client` and `deadline_ms` never
//! enter the job itself: cache keys and reports are byte-identical with
//! or without them.

use crate::engine::Engine;
use crate::error::JobError;
use crate::faults::ATTEST_BASIS;
use crate::job::{Job, JobKind};
use crate::json::Json;
use crate::pool::lock_unpoisoned;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Connection-hardening and supervision knobs. The defaults assume an
/// untrusted LAN client: an idle or stalled peer is disconnected instead
/// of pinning a thread forever, a single frame cannot exhaust memory,
/// and a connection flood is rejected with a structured `busy` error
/// instead of spawning unbounded threads.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Disconnect a connection that sends no complete frame for this
    /// long, ms. 0 = wait forever (the pre-hardening behavior).
    pub idle_timeout_ms: u64,
    /// Maximum accepted frame length, bytes; longer frames get a
    /// structured error and the connection is closed.
    pub max_line_bytes: usize,
    /// Maximum concurrent connections; further connects get one
    /// structured `busy` rejection line and are closed. 0 = unlimited.
    pub max_connections: usize,
    /// A busy worker silent for longer than this, ms, counts as stalled
    /// in `health`/`ready` responses. 0 disables stall detection.
    pub stall_threshold_ms: u64,
    /// Whether the `shutdown` protocol command is honored. Off by
    /// default: any LAN client can reach the socket, and a shared
    /// backend must not be killable by one of them. When off, the
    /// command answers `{"ok":false,"error":"shutdown disabled"}`.
    pub allow_remote_shutdown: bool,
    /// Per-client token-bucket quota: burst capacity in requests. A job
    /// request names its client with a `"client"` field (anonymous
    /// requests share the `"anon"` bucket). 0 disables quotas.
    pub quota_burst: u32,
    /// Token-bucket refill rate, requests per second per client. Only
    /// meaningful when `quota_burst > 0`.
    pub quota_refill_per_sec: f64,
    /// Load shedding: maximum job requests in flight (queued or
    /// executing) per *live* worker before new work is shed with a
    /// structured `retry_after_ms` rejection. Stalled workers do not
    /// count as live, so a wedged pool sheds earlier. 0 disables
    /// shedding.
    pub max_queue_per_worker: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            idle_timeout_ms: 30_000,
            max_line_bytes: 64 * 1024,
            max_connections: 64,
            stall_threshold_ms: 30_000,
            allow_remote_shutdown: false,
            quota_burst: 0,
            quota_refill_per_sec: 8.0,
            max_queue_per_worker: 16,
        }
    }
}

/// Hard bound on distinct client buckets held in memory: beyond it,
/// stale buckets are pruned, and if every bucket is live the request is
/// rejected — an adversary inventing client ids cannot grow the map
/// without bound.
const MAX_CLIENT_BUCKETS: usize = 1024;

/// A classic token bucket: capacity `burst`, refilled continuously at
/// `refill_per_sec`.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn full(burst: u32) -> Self {
        TokenBucket {
            tokens: burst as f64,
            last: Instant::now(),
        }
    }

    /// Takes one token if available; otherwise says how long until the
    /// next token exists, ms.
    fn take(&mut self, burst: u32, refill_per_sec: f64) -> Result<(), u64> {
        let now = Instant::now();
        let refill = now.duration_since(self.last).as_secs_f64() * refill_per_sec;
        self.tokens = (self.tokens + refill).min(burst as f64);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait_s = (1.0 - self.tokens) / refill_per_sec.max(1e-9);
            Err((wait_s * 1e3).ceil() as u64)
        }
    }
}

/// Shared admission state: who is asking for how much, how deep the
/// work queue is, and how long a job has been taking lately. One
/// instance per server, visible to every connection thread.
#[derive(Debug)]
pub(crate) struct Admission {
    quota_burst: u32,
    quota_refill_per_sec: f64,
    max_queue_per_worker: usize,
    /// Job requests accepted and not yet answered (queued + executing).
    inflight: AtomicUsize,
    /// EWMA of recent job service time, µs (0 = no sample yet). Feeds
    /// the `retry_after_ms` hints and the deadline feasibility check.
    avg_service_us: AtomicU64,
    buckets: Mutex<HashMap<String, TokenBucket>>,
    /// Lifetime rejection counts, mirrored onto the obs registry and
    /// reported by `health`.
    shed: AtomicU64,
    quota_rejected: AtomicU64,
    deadline_rejected: AtomicU64,
}

/// RAII claim on one admission slot: holds the in-flight count up while
/// the job runs and folds the observed service time into the EWMA on
/// release.
#[derive(Debug)]
pub(crate) struct AdmissionTicket<'a> {
    admission: &'a Admission,
    started: Instant,
}

impl Drop for AdmissionTicket<'_> {
    fn drop(&mut self) {
        let n = self.admission.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        tdsigma_obs::gauge("serve.admission_queue_depth").set(n as f64);
        self.admission.observe_service(self.started.elapsed());
    }
}

impl Admission {
    fn new(config: &ServerConfig) -> Self {
        Admission {
            quota_burst: config.quota_burst,
            quota_refill_per_sec: config.quota_refill_per_sec,
            max_queue_per_worker: config.max_queue_per_worker,
            inflight: AtomicUsize::new(0),
            avg_service_us: AtomicU64::new(0),
            buckets: Mutex::new(HashMap::new()),
            shed: AtomicU64::new(0),
            quota_rejected: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
        }
    }

    fn observe_service(&self, elapsed: Duration) {
        let sample = elapsed.as_micros() as u64;
        let old = self.avg_service_us.load(Ordering::Relaxed);
        // EWMA with α = 1/8; racy read-modify-write is fine for a hint.
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        self.avg_service_us.store(new, Ordering::Relaxed);
    }

    /// The smoothed service time, ms (0 = no sample yet).
    fn avg_service_ms(&self) -> u64 {
        self.avg_service_us.load(Ordering::Relaxed) / 1000
    }

    /// Job requests currently queued or executing.
    pub(crate) fn queue_depth(&self) -> usize {
        self.inflight.load(Ordering::SeqCst)
    }

    /// How long a turned-away peer should wait before retrying: roughly
    /// one backlog-drain interval, bounded so the hint is never absurd.
    fn retry_after_ms(&self, live_workers: usize) -> u64 {
        let per_job = self.avg_service_ms().max(25);
        let depth = self.queue_depth() as u64;
        (per_job * (depth + 1) / live_workers.max(1) as u64).clamp(50, 30_000)
    }

    /// Admission decision for one job request. `Err` carries the
    /// complete structured rejection to send back.
    fn admit(
        &self,
        client: &str,
        deadline_ms: Option<u64>,
        workers: usize,
        stalled: usize,
    ) -> Result<AdmissionTicket<'_>, Json> {
        let live_workers = workers.saturating_sub(stalled);
        // 1. Quota: a client out of tokens is rejected regardless of how
        // idle the server is — the bucket is the contract.
        if self.quota_burst > 0 {
            if let Err(wait_ms) = self.take_token(client) {
                self.quota_rejected.fetch_add(1, Ordering::Relaxed);
                tdsigma_obs::counter("serve.quota_rejected").inc();
                return Err(busy_response(
                    &format!("quota exceeded for client {client:?}"),
                    wait_ms.max(1),
                    &[("quota", Json::Bool(true))],
                ));
            }
        }
        // 2. Load shedding: bound the backlog by live workers, so a
        // stalled pool sheds earlier and a dead pool sheds everything.
        let depth = self.queue_depth();
        let cap = self.max_queue_per_worker * live_workers;
        if self.max_queue_per_worker > 0 && (live_workers == 0 || depth >= cap) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            tdsigma_obs::counter("serve.shed").inc();
            let message = if live_workers == 0 {
                format!("shedding load: all {workers} worker(s) stalled")
            } else {
                format!("shedding load: {depth} request(s) in flight (limit {cap})")
            };
            return Err(busy_response(
                &message,
                self.retry_after_ms(live_workers),
                &[("shed", Json::Bool(true))],
            ));
        }
        // 3. Deadline feasibility: reject work whose remaining budget
        // cannot cover even the estimated queue wait — running it would
        // only produce a report nobody is still waiting for.
        if let Some(deadline) = deadline_ms {
            let est_wait_ms = self.avg_service_ms() * (depth as u64) / live_workers.max(1) as u64;
            if deadline == 0 || deadline <= est_wait_ms {
                self.deadline_rejected.fetch_add(1, Ordering::Relaxed);
                tdsigma_obs::counter("serve.deadline_rejected").inc();
                return Err(Json::Obj(vec![
                    ("ok".into(), Json::Bool(false)),
                    (
                        "error".into(),
                        Json::Str(format!(
                            "deadline of {deadline} ms cannot be met \
                             (estimated queue wait {est_wait_ms} ms)"
                        )),
                    ),
                    ("deadline_exceeded".into(), Json::Bool(true)),
                ]));
            }
        }
        let n = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        tdsigma_obs::gauge("serve.admission_queue_depth").set(n as f64);
        Ok(AdmissionTicket {
            admission: self,
            started: Instant::now(),
        })
    }

    fn take_token(&self, client: &str) -> Result<(), u64> {
        let mut buckets = lock_unpoisoned(&self.buckets);
        if !buckets.contains_key(client) && buckets.len() >= MAX_CLIENT_BUCKETS {
            // Prune buckets idle long enough to have fully refilled —
            // forgetting one of those loses no state.
            let refill_s =
                (self.quota_burst as f64 / self.quota_refill_per_sec.max(1e-9)).min(60.0);
            buckets.retain(|_, b| b.last.elapsed().as_secs_f64() < refill_s);
            if buckets.len() >= MAX_CLIENT_BUCKETS {
                return Err(1_000); // every bucket live: back off, not OOM
            }
        }
        buckets
            .entry(client.to_string())
            .or_insert_with(|| TokenBucket::full(self.quota_burst))
            .take(self.quota_burst, self.quota_refill_per_sec)
    }
}

/// A structured overload rejection: always `busy:true` and always a
/// computed `retry_after_ms`, plus caller-specific markers.
fn busy_response(message: &str, retry_after_ms: u64, extra: &[(&str, Json)]) -> Json {
    let mut obj = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
        ("busy".to_string(), Json::Bool(true)),
        (
            "retry_after_ms".to_string(),
            Json::Num(retry_after_ms as f64),
        ),
    ];
    for (k, v) in extra {
        obj.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(obj)
}

/// The supervision state `health`/`ready`/`stats` report from: the live
/// connection count, the configured limits, and the process epoch the
/// uptime counter runs against. A dispatcher health-checking a fleet
/// uses `uptime_ms`/`served_jobs` to tell a freshly restarted backend
/// (low uptime, empty counters — treat its warm-up gently) from a
/// long-lived one.
struct Supervision {
    active: Arc<AtomicUsize>,
    max_connections: usize,
    stall_threshold_ms: u64,
    allow_remote_shutdown: bool,
    started: Instant,
    admission: Arc<Admission>,
    /// Monotonic supervision-frame counter, shared by every connection:
    /// each `health`/`ready`/`stats` response consumes one index so the
    /// `wrong_fingerprint` fault site draws deterministically per frame.
    frames: Arc<AtomicU64>,
}

/// A running line-protocol server. One thread per connection; all
/// connections share the engine (and therefore its cache and pool).
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    stop: Arc<AtomicBool>,
    config: ServerConfig,
    active: Arc<AtomicUsize>,
    started: Instant,
    admission: Arc<Admission>,
    frames: Arc<AtomicU64>,
}

impl Server {
    /// Binds the listener (use port 0 to let the OS pick) with default
    /// hardening ([`ServerConfig::default`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: impl ToSocketAddrs, engine: Arc<Engine>) -> io::Result<Self> {
        Server::bind_with(addr, engine, ServerConfig::default())
    }

    /// Binds the listener with explicit hardening knobs.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        engine: Arc<Engine>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let admission = Arc::new(Admission::new(&config));
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            stop: Arc::new(AtomicBool::new(false)),
            config,
            active: Arc::new(AtomicUsize::new(0)),
            started: Instant::now(),
            admission,
            frames: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Connections currently being served.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The bound address (needed when binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` command arrives. Graceful drain: every
    /// connection thread (and therefore every in-flight job) is joined
    /// before returning.
    ///
    /// # Errors
    ///
    /// Propagates listener errors; per-connection I/O errors only end
    /// that connection.
    pub fn run(&self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(mut stream) = stream else { continue };
            // Connection cap: reject loudly instead of queueing silently,
            // so a flooded client knows to back off (and the cap cannot
            // be mistaken for a hang).
            if self.config.max_connections > 0
                && self.active.load(Ordering::SeqCst) >= self.config.max_connections
            {
                tdsigma_obs::counter("serve.busy_rejected").inc();
                let busy = busy_response(
                    &format!(
                        "server busy: {} connections active (limit {})",
                        self.active.load(Ordering::SeqCst),
                        self.config.max_connections
                    ),
                    self.admission.retry_after_ms(self.engine.workers().max(1)),
                    &[],
                );
                let _ = stream.write_all(busy.to_text().as_bytes());
                let _ = stream.write_all(b"\n");
                continue; // dropping the stream closes it
            }
            let active = Arc::clone(&self.active);
            let n = active.fetch_add(1, Ordering::SeqCst) + 1;
            tdsigma_obs::gauge("serve.active_connections").set(n as f64);
            let engine = Arc::clone(&self.engine);
            let stop = Arc::clone(&self.stop);
            let config = self.config.clone();
            let started = self.started;
            let admission = Arc::clone(&self.admission);
            let frames = Arc::clone(&self.frames);
            handles.push(thread::spawn(move || {
                let _ = serve_connection(
                    stream, &engine, &stop, addr, &config, &active, started, &admission, &frames,
                );
                let n = active.fetch_sub(1, Ordering::SeqCst) - 1;
                tdsigma_obs::gauge("serve.active_connections").set(n as f64);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// What reading one frame produced.
enum Frame {
    /// A complete line (without the newline).
    Line(String),
    /// The peer closed the connection.
    Eof,
    /// No complete frame arrived within the idle timeout (also covers a
    /// frame stalled halfway).
    IdleTimeout,
    /// The frame exceeded the configured length bound.
    TooLong,
}

/// Reads one newline-terminated frame, honoring the idle timeout and
/// the length bound. The timeout applies between reads, so a peer that
/// goes silent — before a frame or stalled halfway through one — is
/// disconnected once it elapses.
fn read_frame(reader: &mut BufReader<TcpStream>, max_line_bytes: usize) -> io::Result<Frame> {
    let mut buf = Vec::new();
    // +1 so a frame of exactly max bytes (plus newline) still fits and
    // anything longer is detected as oversized rather than split.
    let mut limited = reader.by_ref().take(max_line_bytes as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => Ok(Frame::Eof),
        Ok(n) if n > max_line_bytes => Ok(Frame::TooLong),
        Ok(_) => {
            while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                buf.pop();
            }
            Ok(Frame::Line(String::from_utf8_lossy(&buf).into_owned()))
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Ok(Frame::IdleTimeout)
        }
        Err(e) => Err(e),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    engine: &Engine,
    stop: &AtomicBool,
    addr: SocketAddr,
    config: &ServerConfig,
    active: &Arc<AtomicUsize>,
    started: Instant,
    admission: &Arc<Admission>,
    frames: &Arc<AtomicU64>,
) -> io::Result<()> {
    let supervision = Supervision {
        active: Arc::clone(active),
        max_connections: config.max_connections,
        stall_threshold_ms: config.stall_threshold_ms,
        allow_remote_shutdown: config.allow_remote_shutdown,
        started,
        admission: Arc::clone(admission),
        frames: Arc::clone(frames),
    };
    if config.idle_timeout_ms > 0 {
        let timeout = Some(Duration::from_millis(config.idle_timeout_ms));
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
    }
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, config.max_line_bytes)? {
            Frame::Line(line) => line,
            Frame::Eof | Frame::IdleTimeout => break,
            Frame::TooLong => {
                // One structured complaint, then hang up: the rest of the
                // oversized frame is unread and unreadable in bounded
                // memory.
                let err = error_response(&format!(
                    "request line exceeds {} bytes",
                    config.max_line_bytes
                ));
                writer.write_all(err.to_text().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_line(line.trim(), engine, &supervision);
        writer.write_all(response.to_text().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in `incoming()`; a throwaway
            // connection wakes it so it can observe the stop flag.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    Ok(())
}

/// Handles one request line; returns the response and whether the server
/// should shut down afterwards.
fn handle_line(line: &str, engine: &Engine, supervision: &Supervision) -> (Json, bool) {
    let request = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_response(&format!("malformed JSON: {e}")), false),
    };
    if let Some(cmd) = request.get("cmd") {
        return match cmd.as_str() {
            Some("ping") => (ok_response(vec![("pong".into(), Json::Bool(true))]), false),
            Some("stats") => (stats_response(engine, supervision), false),
            Some("health") => (health_response(engine, supervision), false),
            Some("ready") => (ready_response(engine, supervision), false),
            Some("run") => (run_response(&request, engine, supervision), false),
            Some("shutdown") if supervision.allow_remote_shutdown => {
                (ok_response(vec![("bye".into(), Json::Bool(true))]), true)
            }
            Some("shutdown") => (error_response("shutdown disabled"), false),
            _ => (
                error_response(
                    "unknown command (expected \"ping\", \"stats\", \"health\", \"ready\", \
                     \"run\" or \"shutdown\")",
                ),
                false,
            ),
        };
    }
    // Friendly-units job request: `client`/`deadline_ms` are admission
    // metadata, not job parameters — peel them off before the strict
    // field check so they never reach the job (or its cache key).
    let (client, deadline_ms, request) = match admission_fields(request) {
        Ok(x) => x,
        Err(e) => return (error_response(&e.to_string()), false),
    };
    let job = match job_from_request(&request) {
        Ok(job) => job,
        Err(e) => return (error_response(&e.to_string()), false),
    };
    (
        admitted_run(engine, supervision, &client, deadline_ms, &job),
        false,
    )
}

/// Executes a `{"cmd":"run","job":{…}}` request: the job arrives in its
/// canonical Hz-units JSON form ([`Job::to_json`]), so no unit
/// conversion happens between a dispatcher and this backend — the cache
/// key computed here is identical to the one the dispatcher computed.
/// `client` and `deadline_ms` ride as siblings of `job`, never inside it.
fn run_response(request: &Json, engine: &Engine, supervision: &Supervision) -> Json {
    let Some(job_json) = request.get("job") else {
        return error_response("run request needs a \"job\" object");
    };
    let job = match Job::from_json(job_json) {
        Ok(job) => job,
        Err(e) => return error_response(&e.to_string()),
    };
    let (client, deadline_ms) = match (client_field(request), deadline_field(request)) {
        (Ok(c), Ok(d)) => (c, d),
        (Err(e), _) | (_, Err(e)) => return error_response(&e.to_string()),
    };
    admitted_run(engine, supervision, &client, deadline_ms, &job)
}

/// The admission gate plus the actual execution: quota → shed → deadline
/// checks, then the job runs with any remaining budget mapped onto the
/// pool's soft-deadline machinery.
fn admitted_run(
    engine: &Engine,
    supervision: &Supervision,
    client: &str,
    deadline_ms: Option<u64>,
    job: &Job,
) -> Json {
    let stalled = engine.stalled_workers(supervision.stall_threshold_ms);
    let ticket = match supervision
        .admission
        .admit(client, deadline_ms, engine.workers(), stalled)
    {
        Ok(ticket) => ticket,
        Err(rejection) => return rejection,
    };
    let result = engine.submit_one_with_deadline(job, deadline_ms.unwrap_or(0));
    drop(ticket);
    match result {
        Ok(mut report) => {
            // Lying-backend fault site: perturb a report *value* after
            // compute, keeping the key intact. The attestation below is
            // computed over the lying bytes, so it still verifies — by
            // design, this corruption is only catchable by redundant
            // recomputation on the dispatching side.
            if let Some(delta) = engine.fault_plan().lying_report_delta(&job.key()) {
                report.sndr_db += delta;
                tdsigma_obs::counter("serve.lying_backend_injected").inc();
            }
            let attest = crate::faults::fnv1a64(report.to_text().as_bytes(), ATTEST_BASIS);
            ok_response(vec![
                ("report".into(), report.to_json()),
                ("attest".into(), Json::Str(format!("{attest:016x}"))),
            ])
        }
        Err(e) => error_response(&e.to_string()),
    }
}

/// Extracts and validates the optional `client` field (default `anon`).
fn client_field(request: &Json) -> Result<String, JobError> {
    match request.get("client") {
        None | Some(Json::Null) => Ok("anon".into()),
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(JobError::Invalid(
            "field \"client\" must be a string".into(),
        )),
    }
}

/// Extracts and validates the optional `deadline_ms` field: the client's
/// remaining budget for this request, in ms.
fn deadline_field(request: &Json) -> Result<Option<u64>, JobError> {
    match request.get("deadline_ms") {
        None | Some(Json::Null) => Ok(None),
        Some(x) => x.as_u64().map(Some).ok_or_else(|| {
            JobError::Invalid("field \"deadline_ms\" must be a non-negative integer".into())
        }),
    }
}

/// Splits the admission metadata off a friendly-units request, returning
/// `(client, deadline_ms, request-without-those-fields)`.
fn admission_fields(request: Json) -> Result<(String, Option<u64>, Json), JobError> {
    let client = client_field(&request)?;
    let deadline_ms = deadline_field(&request)?;
    let stripped = match request {
        Json::Obj(fields) => Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "client" && k != "deadline_ms")
                .collect(),
        ),
        other => other,
    };
    Ok((client, deadline_ms, stripped))
}

fn ok_response(mut fields: Vec<(String, Json)>) -> Json {
    let mut obj = vec![("ok".to_string(), Json::Bool(true))];
    obj.append(&mut fields);
    Json::Obj(obj)
}

fn error_response(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(message.into())),
    ])
}

/// The engine fingerprint this supervision frame advertises. Normally
/// the process-wide [`tdsigma_core::engine_fingerprint`]; under the
/// `wrong_fingerprint` fault site the hex digits come back reversed —
/// a deterministic garble a skew-aware client must reject, never a
/// value that could collide with a real engine's fingerprint by luck.
fn advertised_fingerprint(engine: &Engine, supervision: &Supervision) -> String {
    let ours = tdsigma_core::engine_fingerprint();
    let frame = supervision.frames.fetch_add(1, Ordering::Relaxed);
    if engine.fault_plan().wrong_fingerprint(frame) {
        tdsigma_obs::counter("serve.wrong_fingerprint_injected").inc();
        return ours.chars().rev().collect();
    }
    ours.to_string()
}

/// The liveness watchdog's verdict: worker heartbeats, connection
/// pressure, and lifetime failure counts in one object. `status` is
/// `"degraded"` the moment any busy worker goes silent past the stall
/// threshold — the signal a supervisor alerts on.
fn health_response(engine: &Engine, supervision: &Supervision) -> Json {
    tdsigma_obs::counter("serve.health_checks").inc();
    let beats = engine.heartbeats();
    let busy = beats.iter().filter(|h| h.busy).count();
    let max_age = beats
        .iter()
        .filter(|h| h.busy)
        .map(|h| h.age_ms)
        .max()
        .unwrap_or(0);
    let stalled = engine.stalled_workers(supervision.stall_threshold_ms);
    let totals = engine.totals();
    let status = if stalled > 0 { "degraded" } else { "ok" };
    ok_response(vec![(
        "health".into(),
        Json::Obj(vec![
            ("status".into(), Json::Str(status.into())),
            (
                "fingerprint".into(),
                Json::Str(advertised_fingerprint(engine, supervision)),
            ),
            ("workers".into(), Json::Num(beats.len() as f64)),
            ("busy_workers".into(), Json::Num(busy as f64)),
            ("stalled_workers".into(), Json::Num(stalled as f64)),
            ("max_heartbeat_age_ms".into(), Json::Num(max_age as f64)),
            (
                "active_connections".into(),
                Json::Num(supervision.active.load(Ordering::SeqCst) as f64),
            ),
            (
                "max_connections".into(),
                Json::Num(supervision.max_connections as f64),
            ),
            ("jobs".into(), Json::Num(totals.jobs as f64)),
            ("failed".into(), Json::Num(totals.failed as f64)),
            (
                "cache_quarantined".into(),
                Json::Num(engine.cache().quarantined() as f64),
            ),
            (
                "uptime_ms".into(),
                Json::Num(supervision.started.elapsed().as_millis() as f64),
            ),
            ("served_jobs".into(), Json::Num(totals.jobs as f64)),
            (
                "queue_depth".into(),
                Json::Num(supervision.admission.queue_depth() as f64),
            ),
            (
                "shed".into(),
                Json::Num(supervision.admission.shed.load(Ordering::Relaxed) as f64),
            ),
            (
                "quota_rejected".into(),
                Json::Num(supervision.admission.quota_rejected.load(Ordering::Relaxed) as f64),
            ),
            (
                "deadline_rejected".into(),
                Json::Num(
                    supervision
                        .admission
                        .deadline_rejected
                        .load(Ordering::Relaxed) as f64,
                ),
            ),
        ]),
    )])
}

/// Readiness: can this server usefully take another connection right
/// now? False while any worker is stalled or the connection cap is
/// reached, with a `reason` a load balancer can log.
fn ready_response(engine: &Engine, supervision: &Supervision) -> Json {
    tdsigma_obs::counter("serve.health_checks").inc();
    let stalled = engine.stalled_workers(supervision.stall_threshold_ms);
    let active = supervision.active.load(Ordering::SeqCst);
    let at_cap = supervision.max_connections > 0 && active >= supervision.max_connections;
    let reason = if stalled > 0 {
        Some(format!("{stalled} worker(s) stalled"))
    } else if at_cap {
        Some(format!(
            "connection limit reached ({active}/{})",
            supervision.max_connections
        ))
    } else {
        None
    };
    let mut fields = vec![
        ("ready".into(), Json::Bool(reason.is_none())),
        (
            "fingerprint".into(),
            Json::Str(advertised_fingerprint(engine, supervision)),
        ),
    ];
    if let Some(reason) = reason {
        fields.push(("reason".into(), Json::Str(reason)));
    }
    ok_response(fields)
}

fn stats_response(engine: &Engine, supervision: &Supervision) -> Json {
    // A stats request is a natural checkpoint: push any buffered trace
    // lines to disk so an operator tailing the file sees current state.
    tdsigma_obs::flush_tracing();
    let totals = engine.totals();
    ok_response(vec![(
        "stats".into(),
        Json::Obj(vec![
            (
                "fingerprint".into(),
                Json::Str(advertised_fingerprint(engine, supervision)),
            ),
            ("workers".into(), Json::Num(engine.workers() as f64)),
            ("jobs".into(), Json::Num(totals.jobs as f64)),
            (
                "uptime_ms".into(),
                Json::Num(supervision.started.elapsed().as_millis() as f64),
            ),
            ("served_jobs".into(), Json::Num(totals.jobs as f64)),
            ("cache_hits".into(), Json::Num(totals.cache_hits as f64)),
            ("executed".into(), Json::Num(totals.executed as f64)),
            ("failed".into(), Json::Num(totals.failed as f64)),
            (
                "cached_results".into(),
                Json::Num(engine.cache().len() as f64),
            ),
            (
                "cache_quarantined".into(),
                Json::Num(engine.cache().quarantined() as f64),
            ),
            (
                "cache_stale".into(),
                Json::Num(engine.cache().stale() as f64),
            ),
            (
                "cache_legacy_rejected".into(),
                Json::Num(engine.cache().legacy_rejected() as f64),
            ),
            ("obs".into(), obs_snapshot_json()),
        ]),
    )])
}

/// The live observability registry as JSON: every counter and gauge by
/// name, and per-span timing summaries from the histograms.
fn obs_snapshot_json() -> Json {
    let snap = tdsigma_obs::registry().snapshot();
    let counters = snap
        .counters
        .into_iter()
        .map(|(name, v)| (name, Json::Num(v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .into_iter()
        .map(|(name, v)| (name, Json::Num(v)))
        .collect();
    let spans = snap
        .histograms
        .into_iter()
        .map(|(name, h)| {
            let obj = Json::Obj(vec![
                ("count".into(), Json::Num(h.count as f64)),
                ("total_ms".into(), Json::Num(h.total_ms())),
                ("mean_ms".into(), Json::Num(h.mean_ms())),
                ("p99_ms".into(), Json::Num(h.quantile_us(0.99) as f64 / 1e3)),
                ("max_ms".into(), Json::Num(h.max_ms())),
            ]);
            (name, obj)
        })
        .collect();
    Json::Obj(vec![
        ("counters".into(), Json::Obj(counters)),
        ("gauges".into(), Json::Obj(gauges)),
        ("spans".into(), Json::Obj(spans)),
    ])
}

/// Builds a [`Job`] from a friendly-units request object. Unknown fields
/// are rejected so a typo cannot silently fall back to a default.
fn job_from_request(v: &Json) -> Result<Job, JobError> {
    const KNOWN: [&str; 13] = [
        "kind",
        "node",
        "slices",
        "fs_mhz",
        "bw_mhz",
        "samples",
        "amplitude",
        "fin_mhz",
        "steps",
        "loop_gain",
        "vco_stages",
        "rdac_ohm",
        "seed",
    ];
    let Json::Obj(fields) = v else {
        return Err(JobError::Invalid("request must be a JSON object".into()));
    };
    if let Some((k, _)) = fields.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
        return Err(JobError::Invalid(format!(
            "unknown request field {k:?} (known: {})",
            KNOWN.join(", ")
        )));
    }
    let num = |k: &str| -> Result<Option<f64>, JobError> {
        match v.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_f64()
                .map(Some)
                .ok_or_else(|| JobError::Invalid(format!("field {k:?} must be a number"))),
        }
    };
    let int = |k: &str| -> Result<Option<u64>, JobError> {
        match v.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x.as_u64().map(Some).ok_or_else(|| {
                JobError::Invalid(format!("field {k:?} must be a non-negative integer"))
            }),
        }
    };
    let require = |k: &str, x: Option<f64>| -> Result<f64, JobError> {
        x.ok_or_else(|| JobError::Invalid(format!("field {k:?} is required")))
    };

    let kind = match v.get("kind") {
        None => JobKind::SimTone,
        Some(k) => JobKind::parse(
            k.as_str()
                .ok_or_else(|| JobError::Invalid("field \"kind\" must be a string".into()))?,
        )?,
    };
    let node_nm = require("node", num("node")?)?;
    let fs_hz = require("fs_mhz", num("fs_mhz")?)? * 1e6;
    let bw_hz = require("bw_mhz", num("bw_mhz")?)? * 1e6;
    let mut job = match kind {
        JobKind::SimTone => Job::sim(node_nm, fs_hz, bw_hz),
        JobKind::FullFlow => Job::flow(node_nm, fs_hz, bw_hz),
    };
    if let Some(x) = int("slices")? {
        job.slices = x as usize;
    }
    if let Some(x) = int("samples")? {
        job.samples = x as usize;
    }
    if let Some(x) = num("amplitude")? {
        job.amplitude_rel = x;
    }
    if let Some(x) = num("fin_mhz")? {
        job.fin_hz = Some(x * 1e6);
    }
    if let Some(x) = int("steps")? {
        job.steps_per_cycle = x as usize;
    }
    if let Some(x) = num("loop_gain")? {
        job.loop_gain = x;
    }
    if let Some(x) = int("vco_stages")? {
        job.vco_stages = x as usize;
    }
    if let Some(x) = num("rdac_ohm")? {
        job.rdac_ohm = x;
    }
    if let Some(x) = int("seed")? {
        job.seed = x;
    }
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::faults::FaultPlan;
    use crate::metrics::StageTimes;
    use crate::pool::{PoolConfig, Runner};
    use crate::report::JobReport;

    fn test_engine() -> Arc<Engine> {
        test_engine_with_faults(FaultPlan::none())
    }

    fn test_engine_with_faults(faults: FaultPlan) -> Arc<Engine> {
        let runner: Arc<Runner> = Arc::new(|job: &Job| {
            if job.node_nm == 13.0 {
                return Err(JobError::Invalid("unsupported node".into()));
            }
            Ok((
                JobReport {
                    key: job.key(),
                    job: job.clone(),
                    fin_hz: job.input_frequency_hz(),
                    sndr_db: 60.0 + job.seed as f64,
                    enob: 9.7,
                    power_mw: None,
                    digital_fraction: None,
                    area_mm2: None,
                    fom_fj: None,
                    timing_slack_ps: None,
                },
                StageTimes::default(),
            ))
        });
        Arc::new(
            Engine::with_runner(
                EngineConfig {
                    pool: PoolConfig {
                        workers: 2,
                        retries: 0,
                        ..PoolConfig::default()
                    },
                    cache_dir: None,
                    faults,
                },
                runner,
            )
            .unwrap(),
        )
    }

    #[test]
    fn request_parsing_applies_defaults_and_overrides() {
        let v = Json::parse(r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":7,"slices":4}"#).unwrap();
        let job = job_from_request(&v).unwrap();
        assert_eq!(job.kind, JobKind::SimTone);
        assert_eq!(job.fs_hz, 750e6);
        assert_eq!(job.slices, 4);
        assert_eq!(job.seed, 7);
        assert_eq!(job.samples, 8192, "sim default");

        let v = Json::parse(r#"{"kind":"flow","node":180,"fs_mhz":250,"bw_mhz":1.4}"#).unwrap();
        let job = job_from_request(&v).unwrap();
        assert_eq!(job.kind, JobKind::FullFlow);
        assert_eq!(job.samples, 16_384, "flow default");
    }

    #[test]
    fn request_parsing_rejects_typos_and_missing_fields() {
        let v = Json::parse(r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"slcies":4}"#).unwrap();
        assert!(job_from_request(&v)
            .unwrap_err()
            .to_string()
            .contains("slcies"));
        let v = Json::parse(r#"{"node":40,"bw_mhz":5}"#).unwrap();
        assert!(job_from_request(&v)
            .unwrap_err()
            .to_string()
            .contains("fs_mhz"));
        let v = Json::parse("[1,2]").unwrap();
        assert!(job_from_request(&v).is_err());
    }

    fn test_supervision() -> Supervision {
        Supervision {
            active: Arc::new(AtomicUsize::new(0)),
            max_connections: 64,
            stall_threshold_ms: 30_000,
            allow_remote_shutdown: true,
            started: Instant::now(),
            admission: Arc::new(Admission::new(&ServerConfig::default())),
            frames: Arc::new(AtomicU64::new(0)),
        }
    }

    #[test]
    fn handle_line_answers_commands_jobs_and_garbage() {
        let engine = test_engine();
        let sup = test_supervision();
        let (r, stop) = handle_line(r#"{"cmd":"ping"}"#, &engine, &sup);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert!(!stop);

        let (r, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":2}"#,
            &engine,
            &sup,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let sndr = r
            .get("report")
            .and_then(|x| x.get("sndr_db"))
            .and_then(Json::as_f64);
        assert_eq!(sndr, Some(62.0));

        let (r, _) = handle_line("this is not json", &engine, &sup);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r.get("error").and_then(Json::as_str).is_some());

        let (r, stop) = handle_line(r#"{"cmd":"shutdown"}"#, &engine, &sup);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert!(stop);
    }

    #[test]
    fn shutdown_is_refused_unless_explicitly_allowed() {
        let engine = test_engine();
        let sup = Supervision {
            allow_remote_shutdown: false,
            ..test_supervision()
        };
        let (r, stop) = handle_line(r#"{"cmd":"shutdown"}"#, &engine, &sup);
        assert!(!stop, "gated shutdown must not stop the server");
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            r.get("error").and_then(Json::as_str),
            Some("shutdown disabled")
        );
        // The connection (and server) keep serving afterwards.
        let (r, stop) = handle_line(r#"{"cmd":"ping"}"#, &engine, &sup);
        assert!(!stop);
        assert_eq!(r.get("pong").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn run_command_round_trips_a_canonical_job() {
        let engine = test_engine();
        let sup = test_supervision();
        let job = Job {
            seed: 5,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        let request = Json::Obj(vec![
            ("cmd".into(), Json::Str("run".into())),
            ("job".into(), job.to_json()),
        ]);
        let (r, stop) = handle_line(&request.to_text(), &engine, &sup);
        assert!(!stop);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let report = r.get("report").expect("report object");
        // The backend computed the same cache address the sender did:
        // the job round-tripped bit-exactly.
        assert_eq!(
            report.get("key").and_then(Json::as_str),
            Some(job.key().as_str())
        );
        assert_eq!(report.get("sndr_db").and_then(Json::as_f64), Some(65.0));

        let (r, _) = handle_line(r#"{"cmd":"run"}"#, &engine, &sup);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("job")));
    }

    #[test]
    fn stats_and_health_expose_uptime_and_served_jobs() {
        let engine = test_engine();
        let sup = test_supervision();
        let (r, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":1}"#,
            &engine,
            &sup,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let (r, _) = handle_line(r#"{"cmd":"stats"}"#, &engine, &sup);
        let stats = r.get("stats").expect("stats object");
        assert_eq!(stats.get("served_jobs").and_then(Json::as_f64), Some(1.0));
        assert!(stats.get("uptime_ms").and_then(Json::as_f64).is_some());
        let (r, _) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
        let health = r.get("health").expect("health object");
        assert_eq!(health.get("served_jobs").and_then(Json::as_f64), Some(1.0));
        assert!(health.get("uptime_ms").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn health_reports_ok_on_an_idle_engine() {
        let engine = test_engine();
        let sup = test_supervision();
        let (r, stop) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
        assert!(!stop);
        let health = r.get("health").expect("health object");
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("workers").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            health.get("stalled_workers").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            health.get("max_connections").and_then(Json::as_f64),
            Some(64.0)
        );
    }

    #[test]
    fn health_degrades_and_ready_flips_when_a_worker_stalls() {
        let runner: Arc<Runner> = Arc::new(|job: &Job| {
            std::thread::sleep(Duration::from_millis(250));
            Ok((
                JobReport {
                    key: job.key(),
                    job: job.clone(),
                    fin_hz: 1e6,
                    sndr_db: 60.0,
                    enob: 9.7,
                    power_mw: None,
                    digital_fraction: None,
                    area_mm2: None,
                    fom_fj: None,
                    timing_slack_ps: None,
                },
                StageTimes::default(),
            ))
        });
        let engine = Arc::new(
            Engine::with_runner(
                EngineConfig {
                    pool: PoolConfig {
                        workers: 1,
                        retries: 0,
                        ..PoolConfig::default()
                    },
                    cache_dir: None,
                    faults: Default::default(),
                },
                runner,
            )
            .unwrap(),
        );
        let sup = Supervision {
            stall_threshold_ms: 50,
            ..test_supervision()
        };
        // Park the single worker in a slow job, then watch it trip the
        // 50 ms watchdog while still running.
        let engine2 = Arc::clone(&engine);
        let bg = thread::spawn(move || engine2.submit_one(&Job::sim(40.0, 750e6, 5e6)));
        std::thread::sleep(Duration::from_millis(150));
        let (r, _) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
        let health = r.get("health").expect("health object");
        assert_eq!(
            health.get("status").and_then(Json::as_str),
            Some("degraded")
        );
        assert_eq!(
            health.get("stalled_workers").and_then(Json::as_f64),
            Some(1.0)
        );
        let (r, _) = handle_line(r#"{"cmd":"ready"}"#, &engine, &sup);
        assert_eq!(r.get("ready").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("reason")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("stalled")));
        bg.join().unwrap().unwrap();
        // Recovered: back to ok/ready.
        std::thread::sleep(Duration::from_millis(20));
        let (r, _) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
        assert_eq!(
            r.get("health")
                .and_then(|h| h.get("status"))
                .and_then(Json::as_str),
            Some("ok")
        );
        let (r, _) = handle_line(r#"{"cmd":"ready"}"#, &engine, &sup);
        assert_eq!(r.get("ready").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn ready_reports_connection_pressure() {
        let engine = test_engine();
        let sup = Supervision {
            active: Arc::new(AtomicUsize::new(2)),
            max_connections: 2,
            ..test_supervision()
        };
        let (r, _) = handle_line(r#"{"cmd":"ready"}"#, &engine, &sup);
        assert_eq!(r.get("ready").and_then(Json::as_bool), Some(false));
        assert!(r
            .get("reason")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("connection limit")));
    }

    #[test]
    fn quota_rejections_are_structured_and_recover_after_refill() {
        let engine = test_engine();
        let sup = Supervision {
            admission: Arc::new(Admission::new(&ServerConfig {
                quota_burst: 2,
                quota_refill_per_sec: 50.0,
                ..ServerConfig::default()
            })),
            ..test_supervision()
        };
        let ask = |seed: u64| {
            handle_line(
                &format!(r#"{{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":{seed},"client":"alice"}}"#),
                &engine,
                &sup,
            )
            .0
        };
        assert_eq!(ask(1).get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ask(2).get("ok").and_then(Json::as_bool), Some(true));
        let rejected = ask(3);
        assert_eq!(rejected.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(rejected.get("busy").and_then(Json::as_bool), Some(true));
        assert_eq!(rejected.get("quota").and_then(Json::as_bool), Some(true));
        let retry = rejected
            .get("retry_after_ms")
            .and_then(Json::as_u64)
            .expect("quota rejection must carry retry_after_ms");
        assert!(retry >= 1, "retry hint must be positive, got {retry}");
        // A different client has its own bucket.
        let (r, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":9,"client":"bob"}"#,
            &engine,
            &sup,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        // After the refill interval the original client is served again.
        std::thread::sleep(Duration::from_millis(retry + 50));
        assert_eq!(ask(4).get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn shedding_trips_on_queue_depth_and_reports_retry_after() {
        let engine = test_engine();
        let sup = Supervision {
            admission: Arc::new(Admission::new(&ServerConfig {
                max_queue_per_worker: 1,
                ..ServerConfig::default()
            })),
            ..test_supervision()
        };
        // Fill the admission window by hand: 2 workers × 1 = 2 slots.
        let t1 = sup.admission.admit("anon", None, 2, 0).unwrap();
        let _t2 = sup.admission.admit("anon", None, 2, 0).unwrap();
        let shed = match sup.admission.admit("anon", None, 2, 0) {
            Err(r) => r,
            Ok(_) => panic!("third request must be shed"),
        };
        assert_eq!(shed.get("busy").and_then(Json::as_bool), Some(true));
        assert_eq!(shed.get("shed").and_then(Json::as_bool), Some(true));
        assert!(shed.get("retry_after_ms").and_then(Json::as_u64).is_some());
        // With every worker stalled, even an empty queue sheds.
        drop(t1);
        let stalled = sup.admission.admit("anon", None, 2, 2);
        assert!(stalled.is_err(), "a fully stalled pool must shed");
        // Through the wire-level path the rejection reaches the client.
        let (r, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":1}"#,
            &engine,
            &sup,
        );
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "one free slot admits the request: {}",
            r.to_text()
        );
    }

    #[test]
    fn hopeless_deadlines_are_rejected_and_feasible_ones_run() {
        let engine = test_engine();
        let sup = test_supervision();
        // deadline_ms: 0 is provably unmeetable.
        let (r, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":1,"deadline_ms":0}"#,
            &engine,
            &sup,
        );
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            r.get("deadline_exceeded").and_then(Json::as_bool),
            Some(true)
        );
        // A generous deadline runs normally, and the report is identical
        // to a deadline-free request (the field never reaches the job).
        let (with, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":5,"deadline_ms":60000}"#,
            &engine,
            &sup,
        );
        let (without, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":5}"#,
            &engine,
            &sup,
        );
        assert_eq!(with.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            with.get("report").map(Json::to_text),
            without.get("report").map(Json::to_text),
            "deadline metadata must not change the report bytes"
        );
        // Malformed deadline is a validation error, not a crash.
        let (r, _) = handle_line(
            r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"deadline_ms":"soon"}"#,
            &engine,
            &sup,
        );
        assert!(r
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("deadline_ms")));
    }

    #[test]
    fn run_command_accepts_sibling_deadline_and_client_fields() {
        let engine = test_engine();
        let sup = test_supervision();
        let job = Job {
            seed: 8,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        let request = Json::Obj(vec![
            ("cmd".into(), Json::Str("run".into())),
            ("job".into(), job.to_json()),
            ("client".into(), Json::Str("sweeper-1".into())),
            ("deadline_ms".into(), Json::Num(60_000.0)),
        ]);
        let (r, _) = handle_line(&request.to_text(), &engine, &sup);
        assert_eq!(
            r.get("ok").and_then(Json::as_bool),
            Some(true),
            "{}",
            r.to_text()
        );
        assert_eq!(
            r.get("report")
                .and_then(|x| x.get("key"))
                .and_then(Json::as_str),
            Some(job.key().as_str()),
            "admission metadata must not perturb the cache key"
        );
    }

    #[test]
    fn health_reports_admission_counters() {
        let engine = test_engine();
        let sup = test_supervision();
        sup.admission
            .admit("anon", Some(0), engine.workers(), 0)
            .unwrap_err();
        let (r, _) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
        let health = r.get("health").expect("health object");
        assert_eq!(health.get("queue_depth").and_then(Json::as_f64), Some(0.0));
        assert_eq!(health.get("shed").and_then(Json::as_f64), Some(0.0));
        assert_eq!(
            health.get("deadline_rejected").and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            health.get("quota_rejected").and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn connection_cap_rejects_with_structured_busy() {
        let engine = test_engine();
        let server = Server::bind_with(
            "127.0.0.1:0",
            engine,
            ServerConfig {
                max_connections: 1,
                allow_remote_shutdown: true,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run().unwrap());

        // First connection occupies the single slot.
        let mut first = TcpStream::connect(addr).unwrap();
        let mut first_reader = BufReader::new(first.try_clone().unwrap());
        first.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        let mut pong = String::new();
        first_reader.read_line(&mut pong).unwrap();
        assert!(pong.contains("pong"), "slot holder must be served: {pong}");

        // Second connection is told why it was turned away, then closed.
        let second = TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        BufReader::new(second).read_line(&mut line).unwrap();
        let busy = Json::parse(line.trim()).unwrap();
        assert_eq!(busy.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(busy.get("busy").and_then(Json::as_bool), Some(true));
        assert!(busy
            .get("error")
            .and_then(Json::as_str)
            .is_some_and(|m| m.contains("busy")));

        // Free the slot, then shut down cleanly (retry while the server
        // notices the first connection closing).
        drop(first_reader);
        drop(first);
        let bye = loop {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let response = Json::parse(line.trim()).unwrap();
            if response.get("busy").and_then(Json::as_bool) != Some(true) {
                break response;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
        handle.join().unwrap();
    }

    #[test]
    fn server_round_trips_over_tcp() {
        let engine = test_engine();
        let server = Server::bind_with(
            "127.0.0.1:0",
            engine,
            ServerConfig {
                allow_remote_shutdown: true,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run().unwrap());

        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut ask = |line: &str| -> Json {
            writeln!(stream, "{line}").unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            Json::parse(response.trim()).unwrap()
        };

        let pong = ask(r#"{"cmd":"ping"}"#);
        assert_eq!(pong.get("pong").and_then(Json::as_bool), Some(true));
        let report = ask(r#"{"node":40,"fs_mhz":750,"bw_mhz":5,"seed":4}"#);
        assert_eq!(
            report
                .get("report")
                .and_then(|r| r.get("sndr_db"))
                .and_then(Json::as_f64),
            Some(64.0)
        );
        let err = ask("{broken");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        let stats = ask(r#"{"cmd":"stats"}"#);
        assert_eq!(
            stats
                .get("stats")
                .and_then(|s| s.get("jobs"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let bye = ask(r#"{"cmd":"shutdown"}"#);
        assert_eq!(bye.get("bye").and_then(Json::as_bool), Some(true));
        handle.join().unwrap();
    }

    #[test]
    fn health_ready_and_stats_advertise_the_engine_fingerprint() {
        let engine = test_engine();
        let sup = test_supervision();
        let ours = tdsigma_core::engine_fingerprint();
        let (r, _) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
        assert_eq!(
            r.get("health")
                .and_then(|h| h.get("fingerprint"))
                .and_then(Json::as_str),
            Some(ours)
        );
        let (r, _) = handle_line(r#"{"cmd":"ready"}"#, &engine, &sup);
        assert_eq!(r.get("fingerprint").and_then(Json::as_str), Some(ours));
        let (r, _) = handle_line(r#"{"cmd":"stats"}"#, &engine, &sup);
        assert_eq!(
            r.get("stats")
                .and_then(|s| s.get("fingerprint"))
                .and_then(Json::as_str),
            Some(ours)
        );
        assert_eq!(
            r.get("stats")
                .and_then(|s| s.get("cache_stale"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            r.get("stats")
                .and_then(|s| s.get("cache_legacy_rejected"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn wrong_fingerprint_fault_garbles_every_supervision_frame() {
        let engine = test_engine_with_faults(FaultPlan {
            seed: 7,
            wrong_fingerprint_permille: 1000,
            ..FaultPlan::none()
        });
        let sup = test_supervision();
        let ours = tdsigma_core::engine_fingerprint();
        let garbled: String = ours.chars().rev().collect();
        assert_ne!(garbled, ours, "fingerprint must not be a palindrome");
        for _ in 0..3 {
            let (r, _) = handle_line(r#"{"cmd":"health"}"#, &engine, &sup);
            assert_eq!(
                r.get("health")
                    .and_then(|h| h.get("fingerprint"))
                    .and_then(Json::as_str),
                Some(garbled.as_str()),
                "a 1000-permille fault must garble every frame, deterministically"
            );
        }
    }

    #[test]
    fn retry_after_hint_is_clamped_to_sane_bounds() {
        let adm = Admission::new(&ServerConfig::default());
        // No service samples yet, empty queue, many live workers: the
        // raw estimate (25 ms / 64) would be sub-millisecond — the hint
        // floors at 50 ms so clients never hot-spin.
        assert_eq!(adm.retry_after_ms(64), 50);
        // Pathological backlog (120 s/job, 500 deep, one worker): the
        // raw estimate is a day — the hint caps at 30 s so a turned-away
        // peer still probes within a human attention span.
        adm.avg_service_us.store(120_000_000, Ordering::Relaxed);
        adm.inflight.store(500, Ordering::SeqCst);
        assert_eq!(adm.retry_after_ms(1), 30_000);
        // In between the hint is the backlog-drain estimate itself:
        // 1 s/job × (3+1) in line ÷ 2 workers = 2 s.
        adm.avg_service_us.store(1_000_000, Ordering::Relaxed);
        adm.inflight.store(3, Ordering::SeqCst);
        assert_eq!(adm.retry_after_ms(2), 2_000);
        // Zero live workers is treated as one, not a divide-by-zero.
        assert_eq!(adm.retry_after_ms(0), 4_000);
    }

    #[test]
    fn token_bucket_long_idle_refill_clamps_at_burst() {
        let mut bucket = TokenBucket::full(3);
        for _ in 0..3 {
            assert!(bucket.take(3, 1.0).is_ok(), "a full bucket serves burst");
        }
        let wait = bucket.take(3, 1.0).expect_err("drained bucket rejects");
        assert!(
            (1..=1_000).contains(&wait),
            "the hint is at most one refill interval: {wait}"
        );
        // A client silent for a day does not bank a day of tokens: the
        // continuous refill clamps at burst, so the comeback burst is
        // exactly `burst` requests and not one per idle second.
        bucket.last = Instant::now() - Duration::from_secs(86_400);
        for _ in 0..3 {
            assert!(bucket.take(3, 1.0).is_ok(), "idle refills to burst");
        }
        assert!(
            bucket.take(3, 1.0).is_err(),
            "token 4 must not exist after any idle, however long"
        );
        assert!(
            bucket.tokens.is_finite() && bucket.tokens >= 0.0,
            "clamped arithmetic keeps the level sane: {}",
            bucket.tokens
        );
    }

    #[test]
    fn token_bucket_zero_refill_rate_stays_finite() {
        // A pathological configuration (burst without refill) must not
        // divide by zero or go NaN — the wait hint is huge but finite.
        let mut bucket = TokenBucket::full(1);
        assert!(bucket.take(1, 0.0).is_ok());
        let wait = bucket.take(1, 0.0).expect_err("never refills");
        assert!(wait > 0, "a finite wait, not a panic");
        assert!(bucket.tokens.is_finite());
    }

    #[test]
    fn quota_and_shed_hints_use_their_own_clamps() {
        let adm = Admission::new(&ServerConfig {
            quota_burst: 1,
            quota_refill_per_sec: 2.0,
            max_queue_per_worker: 1,
            ..ServerConfig::default()
        });
        let ticket = adm.admit("c", None, 1, 0).expect("first token admits");
        // The same client again, bucket empty: the rejection carries the
        // bucket's own refill wait (≈500 ms at 2 tokens/s) — not the
        // queue-drain estimate with its 50 ms floor.
        let rejection = adm.admit("c", None, 1, 0).expect_err("quota rejects");
        assert_eq!(rejection.get("quota").and_then(Json::as_bool), Some(true));
        let wait = rejection
            .get("retry_after_ms")
            .and_then(Json::as_f64)
            .expect("structured hint") as u64;
        assert!(
            (1..=500).contains(&wait),
            "quota hint tracks the refill interval: {wait}"
        );
        // A fresh client has tokens, but the in-flight ticket fills the
        // one-per-worker queue cap: the shed path answers, and with no
        // service samples yet its drain estimate clamps to the 50 ms
        // floor (interaction: quota was checked — and passed — first).
        let shed = adm.admit("other", None, 1, 0).expect_err("shed rejects");
        assert_eq!(shed.get("shed").and_then(Json::as_bool), Some(true));
        let wait = shed
            .get("retry_after_ms")
            .and_then(Json::as_f64)
            .expect("structured hint") as u64;
        assert_eq!(wait, 50, "no samples: the floor of the clamp");
        assert_eq!(adm.quota_rejected.load(Ordering::Relaxed), 1);
        assert_eq!(adm.shed.load(Ordering::Relaxed), 1);
        // Releasing the ticket reopens the queue — but the shed attempt
        // above already burned "other"'s only token (quota is checked
        // first), so its next call is quota-rejected, while a brand-new
        // client sails through.
        drop(ticket);
        let rejection = adm
            .admit("other", None, 1, 0)
            .expect_err("token spent on shed");
        assert_eq!(rejection.get("quota").and_then(Json::as_bool), Some(true));
        assert!(adm.admit("third", None, 1, 0).is_ok());
    }

    #[test]
    fn lying_backend_fault_perturbs_values_but_keeps_key_and_attestation() {
        let engine = test_engine_with_faults(FaultPlan {
            seed: 83,
            lying_backend_permille: 1000,
            ..FaultPlan::none()
        });
        let sup = test_supervision();
        let job = Job {
            seed: 5,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        let request = Json::Obj(vec![
            ("cmd".into(), Json::Str("run".into())),
            ("job".into(), job.to_json()),
        ]);
        let (r, _) = handle_line(&request.to_text(), &engine, &sup);
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        let report_json = r.get("report").expect("report object");
        assert_eq!(
            report_json.get("key").and_then(Json::as_str),
            Some(job.key().as_str()),
            "a lying backend keeps the key intact — that is what makes it hard"
        );
        let sndr = report_json
            .get("sndr_db")
            .and_then(Json::as_f64)
            .expect("sndr_db");
        assert!(
            sndr >= 65.5,
            "the honest runner says 65.0; the lie adds at least 0.5 dB: {sndr}"
        );
        // The attestation is computed over the lying bytes, so it still
        // verifies — by design, wire attestation cannot catch a lying
        // backend; only redundant recomputation can.
        let report = JobReport::from_json(report_json).expect("parsable report");
        let expected = format!(
            "{:016x}",
            crate::faults::fnv1a64(report.to_text().as_bytes(), crate::faults::ATTEST_BASIS)
        );
        assert_eq!(
            r.get("attest").and_then(Json::as_str),
            Some(expected.as_str())
        );
        assert!(tdsigma_obs::counter("serve.lying_backend_injected").get() >= 1);
    }
}
