//! Error type for job submission and execution.

use std::fmt;

/// Everything that can go wrong between submitting a job and getting a
/// report back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job parameters are invalid (spec validation, unknown node,
    /// malformed request). Not retryable: the same input always fails.
    Invalid(String),
    /// The flow errored or panicked on every allowed attempt.
    Failed {
        /// Number of attempts made (1 = no retries were allowed/needed).
        attempts: u32,
        /// Message of the final failure.
        message: String,
    },
    /// A transient infrastructure failure (injected by a fault plan or
    /// surfaced by a flaky resource). Retryable by definition.
    Transient(String),
    /// One attempt overran its soft deadline; the attempt's result was
    /// discarded. Retryable — the overrun may have been environmental.
    Timeout {
        /// The soft deadline that was exceeded, ms.
        soft_deadline_ms: u64,
    },
    /// The batch was cancelled before this job ran.
    Canceled,
    /// The worker pool is shut down.
    PoolClosed,
    /// Cache or network I/O failure.
    Io(String),
}

impl JobError {
    /// Whether re-running the job could plausibly succeed (panics and
    /// transient failures — not validation errors).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            JobError::Failed { .. }
                | JobError::Io(_)
                | JobError::Transient(_)
                | JobError::Timeout { .. }
        )
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job: {m}"),
            JobError::Failed { attempts, message } => {
                write!(f, "job failed after {attempts} attempt(s): {message}")
            }
            JobError::Transient(m) => write!(f, "transient failure: {m}"),
            JobError::Timeout { soft_deadline_ms } => {
                write!(f, "attempt exceeded soft deadline of {soft_deadline_ms} ms")
            }
            JobError::Canceled => f.write_str("job canceled"),
            JobError::PoolClosed => f.write_str("worker pool is closed"),
            JobError::Io(m) => write!(f, "job I/O error: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e.to_string())
    }
}
