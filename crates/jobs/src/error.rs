//! Error type for job submission and execution.

use std::fmt;
use std::path::Path;

/// Everything that can go wrong between submitting a job and getting a
/// report back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job parameters are invalid (spec validation, unknown node,
    /// malformed request). Not retryable: the same input always fails.
    Invalid(String),
    /// The flow errored or panicked on every allowed attempt.
    Failed {
        /// Number of attempts made (1 = no retries were allowed/needed).
        attempts: u32,
        /// Message of the final failure.
        message: String,
    },
    /// A transient infrastructure failure (injected by a fault plan or
    /// surfaced by a flaky resource). Retryable by definition.
    Transient(String),
    /// One attempt overran its soft deadline; the attempt's result was
    /// discarded. Retryable — the overrun may have been environmental.
    Timeout {
        /// The soft deadline that was exceeded, ms.
        soft_deadline_ms: u64,
    },
    /// The batch was cancelled before this job ran.
    Canceled,
    /// The worker pool is shut down.
    PoolClosed,
    /// Cache, journal or network I/O failure, carrying the OS error kind
    /// and (when known) the path that failed, so a `PermissionDenied` on
    /// a read-only cache dir is distinguishable from a full disk.
    Io {
        /// The OS error class ([`std::io::ErrorKind`]).
        kind: std::io::ErrorKind,
        /// The filesystem path the operation failed on, if known.
        path: Option<String>,
        /// The underlying error message.
        message: String,
    },
}

impl JobError {
    /// Wraps an [`std::io::Error`] with the path it occurred on, so the
    /// error taxonomy keeps both the OS error kind and the location.
    pub fn io_at(path: impl AsRef<Path>, e: &std::io::Error) -> Self {
        JobError::Io {
            kind: e.kind(),
            path: Some(path.as_ref().display().to_string()),
            message: e.to_string(),
        }
    }

    /// Whether re-running the job could plausibly succeed (panics and
    /// transient failures — not validation errors).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            JobError::Failed { .. }
                | JobError::Io { .. }
                | JobError::Transient(_)
                | JobError::Timeout { .. }
        )
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job: {m}"),
            JobError::Failed { attempts, message } => {
                write!(f, "job failed after {attempts} attempt(s): {message}")
            }
            JobError::Transient(m) => write!(f, "transient failure: {m}"),
            JobError::Timeout { soft_deadline_ms } => {
                write!(f, "attempt exceeded soft deadline of {soft_deadline_ms} ms")
            }
            JobError::Canceled => f.write_str("job canceled"),
            JobError::PoolClosed => f.write_str("worker pool is closed"),
            JobError::Io {
                kind,
                path: Some(path),
                message,
            } => write!(f, "job I/O error ({kind:?}) at {path}: {message}"),
            JobError::Io {
                kind,
                path: None,
                message,
            } => write!(f, "job I/O error ({kind:?}): {message}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io {
            kind: e.kind(),
            path: None,
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn io_errors_carry_kind_and_path() {
        let os = io::Error::new(io::ErrorKind::PermissionDenied, "denied by mode 0555");
        let e = JobError::io_at("/tmp/cache/abc.json", &os);
        match &e {
            JobError::Io { kind, path, .. } => {
                assert_eq!(*kind, io::ErrorKind::PermissionDenied);
                assert_eq!(path.as_deref(), Some("/tmp/cache/abc.json"));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        let text = e.to_string();
        assert!(text.contains("PermissionDenied"), "{text}");
        assert!(text.contains("/tmp/cache/abc.json"), "{text}");
        assert!(text.contains("denied by mode"), "{text}");
    }

    #[test]
    fn from_io_error_keeps_the_kind() {
        let e: JobError = io::Error::new(io::ErrorKind::StorageFull, "disk full").into();
        match &e {
            JobError::Io { kind, path, .. } => {
                assert_eq!(*kind, io::ErrorKind::StorageFull);
                assert_eq!(*path, None);
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(e.is_retryable(), "I/O failures are retryable");
    }
}
