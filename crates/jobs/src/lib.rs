//! `tdsigma-jobs` — a std-only parallel job-execution subsystem for the
//! tdsigma design flows.
//!
//! The crate turns "run this grid of ADC configurations" from a serial
//! loop into a first-class engine with four pieces:
//!
//! * **[`Job`]** — the unit of work: a fully-parameterized, deterministic
//!   description (spec knobs + flow options + RNG seed) with a stable
//!   content address ([`Job::key`]).
//! * **[`WorkerPool`]** — a `std::thread` + channel scheduler with
//!   per-job panic isolation (`catch_unwind`), bounded retries and
//!   cooperative cancellation.
//! * **[`ResultCache`]** — a content-addressed result store (in-memory
//!   map + on-disk JSON artifacts, conventionally under `results/cache/`)
//!   so repeated sweeps are answered without re-running flows. Artifacts
//!   are checksummed and stamped with the engine fingerprint
//!   ([`tdsigma_core::engine_fingerprint`]); a stamp from a different
//!   engine demotes the artifact to a `stale/` tier instead of replaying
//!   it, and unchecksummed artifacts are quarantined outright.
//! * **[`Engine`]** — pool + cache + [`BatchMetrics`] accounting behind
//!   one API: [`Engine::run_batch`] for sweeps, [`Engine::submit_one`]
//!   for the [`Server`] line protocol.
//! * **[`FaultPlan`]** — seeded, deterministic fault injection (worker
//!   panics, transient errors, latency, artifact corruption, hostile
//!   frames) that exercises the resilience layer: exponential backoff
//!   with deterministic jitter, soft deadlines, cache quarantine, socket
//!   timeouts and graceful drain. The chaos suite
//!   (`tests/chaos.rs`) asserts the headline invariant: under any fault
//!   seed a batch either reproduces the fault-free bytes or fails loudly
//!   with a structured error — it never hangs, never drops a job
//!   silently, never poisons the cache.
//!
//! The load-bearing guarantee is **determinism**: a [`JobReport`] is a
//! pure function of its [`Job`] — no wall-clock, host name or scheduling
//! artifact ever enters it — so a sweep produces bit-identical reports
//! whether it ran on one worker or sixteen, serially or from a warm
//! cache. Timing lives in [`StageTimes`] / [`BatchMetrics`], which travel
//! next to the reports, never inside them.
//!
//! Everything here is dependency-free `std`: threads from `std::thread`,
//! channels from `std::sync::mpsc`, sockets from `std::net`, JSON from
//! the in-crate [`json`] writer/parser.

pub mod cache;
pub mod dispatch;
pub mod engine;
pub mod error;
pub mod execute;
pub mod faults;
pub mod job;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod plan;
pub mod pool;
pub mod remote;
pub mod report;
pub mod server;
pub mod supervise;

pub use cache::{CacheScrub, CacheStats, ResultCache};
pub use dispatch::{BreakerConfig, BreakerState, CircuitBreaker, DispatchConfig, Dispatcher};
pub use engine::{BatchReport, Engine, EngineConfig, EngineTotals};
pub use error::JobError;
pub use execute::execute;
pub use faults::{AttemptFault, FaultPlan, FrameFault, NetFault};
pub use job::{Job, JobKind};
pub use journal::{gc_finished, validate_run_id, Journal, JournalGc, JournalRecord, JournalReplay};
pub use json::Json;
pub use metrics::{BackendDispatchStats, BatchMetrics, DispatchSummary, StageTimes};
pub use plan::{PlanPreview, PlanRow};
pub use pool::{
    backoff_delay_ms, default_workers, JobOutcome, PoolConfig, Runner, WorkerHeartbeat, WorkerPool,
};
pub use remote::{BackendHealth, RemoteClient, RemoteConfig, RemoteError};
pub use report::JobReport;
pub use server::{Server, ServerConfig};
pub use supervise::{install_stop_handler, Fleet, FleetConfig};
