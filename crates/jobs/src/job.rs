//! The unit of work: a fully-parameterized, deterministic design job.
//!
//! A [`Job`] is a *value* — plain numbers, no handles — so that two jobs
//! with the same parameters are interchangeable. That is what makes the
//! engine's guarantees possible: the content-addressed cache keys on the
//! canonicalized parameters ([`Job::key`]), results are bit-identical
//! whether the batch ran on one worker or sixteen, and a request arriving
//! over the `serve` line protocol is exactly as executable as one built
//! in-process.

use crate::error::JobError;
use crate::json::Json;
use tdsigma_core::spec::AdcSpec;
use tdsigma_tech::{NodeId, Technology};

/// What the job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Schematic-level behavioral simulation of one tone: fast, returns
    /// SNDR/ENOB only. The workhorse of design-space sweeps.
    SimTone,
    /// The complete Fig.-9 flow (netlist → power plan → APR → extraction
    /// → post-layout sim): slow, returns the full Table-3 row.
    FullFlow,
}

impl JobKind {
    /// Stable protocol name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::SimTone => "sim",
            JobKind::FullFlow => "flow",
        }
    }

    /// Parses a protocol name.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] for anything but `"sim"` / `"flow"`.
    pub fn parse(s: &str) -> Result<Self, JobError> {
        match s {
            "sim" => Ok(JobKind::SimTone),
            "flow" => Ok(JobKind::FullFlow),
            other => Err(JobError::Invalid(format!(
                "unknown job kind {other:?} (expected \"sim\" or \"flow\")"
            ))),
        }
    }
}

/// One design-flow invocation: a spec, flow options, and a deterministic
/// RNG seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Simulation-only or full flow.
    pub kind: JobKind,
    /// Technology node gate length, nm (must name a supported node).
    pub node_nm: f64,
    /// Slice count.
    pub slices: usize,
    /// Sampling clock, Hz.
    pub fs_hz: f64,
    /// Signal bandwidth, Hz.
    pub bw_hz: f64,
    /// Captured clock cycles (power of two for coherent FFT).
    pub samples: usize,
    /// Input amplitude relative to full scale (0–1).
    pub amplitude_rel: f64,
    /// Input tone target frequency, Hz; `None` → coherent tone near BW/5
    /// (the paper's operating point).
    pub fin_hz: Option<f64>,
    /// Simulation substeps per clock cycle; 0 → the spec default.
    pub steps_per_cycle: usize,
    /// Loop-gain multiplier (the paper's SQNR knob); 1.0 → nominal.
    pub loop_gain: f64,
    /// Ring-VCO stages per VCO; 0 → the spec default.
    pub vco_stages: usize,
    /// DAC branch resistance, Ω (the feedback-current knob the design-
    /// space optimizer searches); 0.0 → the spec default (22 kΩ).
    pub rdac_ohm: f64,
    /// RNG seed for mismatch and noise draws (one seed = one die).
    pub seed: u64,
}

impl Job {
    /// A simulation job at the paper's default operating point for the
    /// given node/clock/bandwidth.
    pub fn sim(node_nm: f64, fs_hz: f64, bw_hz: f64) -> Self {
        Job {
            kind: JobKind::SimTone,
            node_nm,
            slices: 8,
            fs_hz,
            bw_hz,
            samples: 8192,
            amplitude_rel: 0.79,
            fin_hz: None,
            steps_per_cycle: 0,
            loop_gain: 1.0,
            vco_stages: 0,
            rdac_ohm: 0.0,
            seed: 2017,
        }
    }

    /// A full-flow job at the paper's default operating point.
    pub fn flow(node_nm: f64, fs_hz: f64, bw_hz: f64) -> Self {
        Job {
            kind: JobKind::FullFlow,
            samples: 16_384,
            ..Job::sim(node_nm, fs_hz, bw_hz)
        }
    }

    /// The canonicalized parameter string this job is addressed by.
    ///
    /// Floats are rendered as their exact IEEE-754 bit patterns, so two
    /// jobs share a canonical form iff every parameter is bit-equal —
    /// no formatting or rounding ambiguity can alias distinct jobs.
    pub fn canonical(&self) -> String {
        format!(
            "v2;kind={};node={:016x};slices={};fs={:016x};bw={:016x};samples={};amp={:016x};\
             fin={};steps={};gain={:016x};stages={};rdac={:016x};seed={}",
            self.kind.as_str(),
            self.node_nm.to_bits(),
            self.slices,
            self.fs_hz.to_bits(),
            self.bw_hz.to_bits(),
            self.samples,
            self.amplitude_rel.to_bits(),
            self.fin_hz
                .map_or("none".to_string(), |f| format!("{:016x}", f.to_bits())),
            self.steps_per_cycle,
            self.loop_gain.to_bits(),
            self.vco_stages,
            self.rdac_ohm.to_bits(),
            self.seed,
        )
    }

    /// The 128-bit content-address of this job (32 hex chars): two
    /// independent FNV-1a passes over [`Job::canonical`]. Keys both the
    /// in-memory map and the on-disk artifact store.
    pub fn key(&self) -> String {
        let canon = self.canonical();
        let a = fnv1a(canon.as_bytes(), 0xcbf2_9ce4_8422_2325);
        let b = fnv1a(canon.as_bytes(), 0x9ae1_6a3b_2f90_404f);
        format!("{a:016x}{b:016x}")
    }

    /// Materializes the validated [`AdcSpec`] this job describes.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] if the node is unsupported or the
    /// derived spec fails validation.
    pub fn to_spec(&self) -> Result<AdcSpec, JobError> {
        let invalid = |e: &dyn std::fmt::Display| JobError::Invalid(e.to_string());
        let node = NodeId::from_gate_length(self.node_nm).map_err(|e| invalid(&e))?;
        let tech = Technology::for_node(node).map_err(|e| invalid(&e))?;
        let mut spec = AdcSpec::for_technology(tech, self.fs_hz, self.bw_hz)
            .map_err(|e| invalid(&e))?
            .with_slices(self.slices)
            .map_err(|e| invalid(&e))?;
        if self.vco_stages != 0 {
            spec.vco_stages = self.vco_stages;
        }
        if self.loop_gain != 1.0 {
            spec.kvco_hz_per_v *= self.loop_gain;
        }
        if self.steps_per_cycle != 0 {
            spec.steps_per_cycle = self.steps_per_cycle;
        }
        if self.rdac_ohm != 0.0 {
            spec = spec
                .with_dac_resistance(self.rdac_ohm)
                .map_err(|e| invalid(&e))?;
        }
        spec.seed = self.seed;
        spec.validated().map_err(|e| invalid(&e))
    }

    /// The coherent input frequency the job will actually simulate: the
    /// target (or BW/5) snapped to a non-zero FFT bin of the capture —
    /// the same snap rule as `DesignFlow::input_frequency_hz`.
    pub fn input_frequency_hz(&self) -> f64 {
        let target = self.fin_hz.unwrap_or(self.bw_hz / 5.0);
        let bin = (target * self.samples as f64 / self.fs_hz).round().max(1.0);
        bin * self.fs_hz / self.samples as f64
    }

    /// This job as a canonical JSON object (Hz units, every field).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("node_nm".into(), Json::Num(self.node_nm)),
            ("slices".into(), Json::Num(self.slices as f64)),
            ("fs_hz".into(), Json::Num(self.fs_hz)),
            ("bw_hz".into(), Json::Num(self.bw_hz)),
            ("samples".into(), Json::Num(self.samples as f64)),
            ("amplitude_rel".into(), Json::Num(self.amplitude_rel)),
            ("fin_hz".into(), self.fin_hz.map_or(Json::Null, Json::Num)),
            (
                "steps_per_cycle".into(),
                Json::Num(self.steps_per_cycle as f64),
            ),
            ("loop_gain".into(), Json::Num(self.loop_gain)),
            ("vco_stages".into(), Json::Num(self.vco_stages as f64)),
            ("rdac_ohm".into(), Json::Num(self.rdac_ohm)),
            ("seed".into(), Json::Num(self.seed as f64)),
        ])
    }

    /// Parses the canonical JSON form written by [`Job::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] on missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<Self, JobError> {
        let missing = |k: &str| JobError::Invalid(format!("job field {k:?} missing or mistyped"));
        let num = |k: &str| v.get(k).and_then(Json::as_f64).ok_or_else(|| missing(k));
        let int = |k: &str| v.get(k).and_then(Json::as_u64).ok_or_else(|| missing(k));
        Ok(Job {
            kind: JobKind::parse(
                v.get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| missing("kind"))?,
            )?,
            node_nm: num("node_nm")?,
            slices: int("slices")? as usize,
            fs_hz: num("fs_hz")?,
            bw_hz: num("bw_hz")?,
            samples: int("samples")? as usize,
            amplitude_rel: num("amplitude_rel")?,
            fin_hz: match v.get("fin_hz") {
                Some(Json::Null) | None => None,
                Some(x) => Some(x.as_f64().ok_or_else(|| missing("fin_hz"))?),
            },
            steps_per_cycle: int("steps_per_cycle")? as usize,
            loop_gain: num("loop_gain")?,
            vco_stages: int("vco_stages")? as usize,
            // Absent in pre-v2 journals and requests: 0.0 = spec default,
            // which is exactly what those jobs meant.
            rdac_ohm: match v.get("rdac_ohm") {
                Some(Json::Null) | None => 0.0,
                Some(x) => x.as_f64().ok_or_else(|| missing("rdac_ohm"))?,
            },
            seed: int("seed")?,
        })
    }
}

fn fnv1a(data: &[u8], basis: u64) -> u64 {
    let mut hash = basis;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        let job = Job::sim(40.0, 750e6, 5e6);
        let k1 = job.key();
        assert_eq!(k1.len(), 32);
        assert_eq!(k1, job.clone().key(), "key must be deterministic");

        let mut other = job.clone();
        other.seed += 1;
        assert_ne!(k1, other.key(), "seed must change the address");
        let mut other = job.clone();
        other.amplitude_rel = 0.790000001;
        assert_ne!(k1, other.key(), "any bit change must change the address");
        let mut other = job.clone();
        other.kind = JobKind::FullFlow;
        assert_ne!(k1, other.key(), "kind must change the address");
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let mut job = Job::flow(180.0, 250e6, 1.4e6);
        job.fin_hz = Some(1.23e6);
        job.seed = 424_242;
        let text = job.to_json().to_text();
        let back = Job::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(job, back);
        assert_eq!(job.key(), back.key());

        let job2 = Job::sim(40.0, 750e6, 5e6);
        let back2 = Job::from_json(&Json::parse(&job2.to_json().to_text()).unwrap()).unwrap();
        assert_eq!(job2, back2);
    }

    #[test]
    fn to_spec_applies_knobs() {
        let mut job = Job::sim(40.0, 750e6, 5e6);
        job.slices = 4;
        job.loop_gain = 1.5;
        job.steps_per_cycle = 8;
        job.seed = 99;
        let spec = job.to_spec().unwrap();
        assert_eq!(spec.n_slices, 4);
        assert_eq!(spec.steps_per_cycle, 8);
        assert_eq!(spec.seed, 99);
        let base = Job::sim(40.0, 750e6, 5e6).to_spec().unwrap();
        assert!((spec.kvco_hz_per_v / base.kvco_hz_per_v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rdac_knob_applies_and_rekeys() {
        let mut job = Job::sim(40.0, 750e6, 5e6);
        let base_key = job.key();
        let base_fs = job.to_spec().unwrap().full_scale_v();
        job.rdac_ohm = 11_000.0;
        assert_ne!(job.key(), base_key, "rdac must change the address");
        let spec = job.to_spec().unwrap();
        assert_eq!(spec.rdac_ohm, 11_000.0);
        assert!((spec.full_scale_v() - 2.0 * base_fs).abs() < 1e-12);
        // Pre-v2 JSON without the field parses to the spec default.
        let legacy = r#"{"kind":"sim","node_nm":40,"slices":8,"fs_hz":750000000,
            "bw_hz":5000000,"samples":8192,"amplitude_rel":0.79,"fin_hz":null,
            "steps_per_cycle":0,"loop_gain":1,"vco_stages":0,"seed":2017}"#;
        let back = Job::from_json(&Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(back.rdac_ohm, 0.0);
        assert_eq!(back.key(), base_key);
    }

    #[test]
    fn invalid_node_is_invalid_not_failed() {
        let job = Job::sim(41.0, 750e6, 5e6);
        match job.to_spec() {
            Err(JobError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn input_frequency_snaps_to_bin() {
        let job = Job::sim(40.0, 750e6, 5e6);
        let fin = job.input_frequency_hz();
        let bin = fin * job.samples as f64 / job.fs_hz;
        assert!((bin - bin.round()).abs() < 1e-9);
        assert!((fin - 1e6).abs() < 200e3, "near BW/5: {fin}");
    }
}
