//! A minimal, dependency-free JSON value type with parser and writer.
//!
//! The jobs subsystem speaks JSON at two surfaces — the on-disk result
//! cache and the `serve` line protocol — and the workspace is std-only,
//! so this module implements the small subset of JSON the subsystem
//! needs: objects (order-preserving), arrays, strings with the standard
//! escapes, finite numbers, booleans and `null`.
//!
//! Writing is deterministic: object fields serialize in insertion order
//! and numbers use Rust's shortest-roundtrip `f64` formatting, so the
//! same value always produces byte-identical text — the property the
//! content-addressed cache and the bit-identical-sweep guarantee rest on.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a non-negative integer (exact within 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes this value into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest-roundtrip formatting: deterministic and
                    // parses back to exactly the same f64.
                    let _ = fmt::Write::write_fmt(out, format_args!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes this value to a fresh string.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad utf8 in number")?;
    let x: f64 = text
        .parse()
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
    if !x.is_finite() {
        return Err(format!("non-finite number {text:?}"));
    }
    Ok(Json::Num(x))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "bad utf8")?;
                let c = rest.chars().next().ok_or("empty scalar")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":-2500}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.to_text(),
            text,
            "canonical text must round-trip byte-identically"
        );
        assert_eq!(
            Json::parse(r#"{"d":-2.5e3}"#).unwrap().to_text(),
            r#"{"d":-2500}"#
        );
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2500.0)
        );
        assert_eq!(v.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for x in [0.79, 1.0 / 3.0, 5e6, 2.0f64.powi(-40), -123.456e-7] {
            let text = Json::Num(x).to_text();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} → {text}");
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""tab\there A""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there A"));
        let s = Json::Str("quote\" back\\ nl\n".into()).to_text();
        assert_eq!(
            Json::parse(&s).unwrap().as_str(),
            Some("quote\" back\\ nl\n")
        );
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
    }
}
