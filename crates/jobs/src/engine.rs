//! The engine: pool + cache + accounting behind one submission API.
//!
//! Batch submission ([`Engine::run_batch`]) is the sweep path: results
//! come back in input order, identical jobs inside one batch execute
//! once, cached jobs execute zero times, and a [`BatchMetrics`] tells
//! you exactly what happened. Single submission ([`Engine::submit_one`])
//! is the serve path: many threads may call it concurrently against the
//! same engine.

use crate::cache::ResultCache;
use crate::error::JobError;
use crate::execute;
use crate::faults::FaultPlan;
use crate::job::Job;
use crate::journal::{Journal, JournalRecord};
use crate::metrics::BatchMetrics;
use crate::pool::{JobOutcome, PoolConfig, Runner, WorkerPool};
use crate::report::JobReport;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use tdsigma_obs as obs;

/// Engine construction options.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker threads, retry budget, backoff and deadline policy.
    pub pool: PoolConfig,
    /// On-disk artifact store for the result cache; `None` → memory only.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault injection, wired into both the pool (panics,
    /// transient errors, latency) and the cache (artifact corruption).
    /// The empty plan — the default — injects nothing.
    pub faults: FaultPlan,
}

/// Lifetime counters across every batch and serve request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Jobs answered (from cache or execution).
    pub jobs: usize,
    /// Answers served from the cache.
    pub cache_hits: usize,
    /// Jobs that executed a flow.
    pub executed: usize,
    /// Jobs that ultimately failed.
    pub failed: usize,
}

/// A parallel, cached job-execution engine.
pub struct Engine {
    pool: WorkerPool,
    cache: ResultCache,
    totals: Mutex<EngineTotals>,
    faults: FaultPlan,
}

/// What a batch run returns: per-job results in submission order, plus
/// the batch accounting.
#[derive(Debug)]
pub struct BatchReport {
    /// One result per submitted job, in submission order.
    pub results: Vec<Result<JobReport, JobError>>,
    /// Outcome counters and timing.
    pub metrics: BatchMetrics,
}

impl BatchReport {
    /// The successful reports, in submission order.
    pub fn reports(&self) -> Vec<&JobReport> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .collect()
    }
}

impl Engine {
    /// An engine running the real design flows.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the cache directory cannot be created.
    pub fn new(config: EngineConfig) -> Result<Self, JobError> {
        Engine::with_runner(config, Arc::new(execute::execute))
    }

    /// An engine with an injected runner (for tests and benches).
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if the cache directory cannot be created.
    pub fn with_runner(config: EngineConfig, runner: Arc<Runner>) -> Result<Self, JobError> {
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::with_disk(dir)?,
            None => ResultCache::in_memory(),
        }
        .with_faults(config.faults);
        Ok(Engine {
            pool: WorkerPool::with_faults(config.pool, runner, config.faults),
            cache,
            totals: Mutex::new(EngineTotals::default()),
            faults: config.faults,
        })
    }

    /// The result cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The fault plan this engine was built with (the serve layer
    /// consults it for frame-level faults such as `wrong_fingerprint`).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Every worker's liveness (see [`crate::pool::WorkerPool::heartbeats`]).
    pub fn heartbeats(&self) -> Vec<crate::pool::WorkerHeartbeat> {
        self.pool.heartbeats()
    }

    /// Busy workers silent for longer than `threshold_ms` (0 disables).
    pub fn stalled_workers(&self, threshold_ms: u64) -> usize {
        self.pool.stalled(threshold_ms)
    }

    /// Requests cooperative cancellation of queued work.
    pub fn cancel(&self) {
        self.pool.cancel();
    }

    /// Graceful drain: in-flight jobs finish, queued jobs resolve as
    /// [`JobError::Canceled`], every worker is joined. Afterwards new
    /// submissions report [`JobError::PoolClosed`].
    pub fn shutdown(&self) {
        self.pool.drain();
    }

    /// Lifetime counters.
    pub fn totals(&self) -> EngineTotals {
        *crate::pool::lock_unpoisoned(&self.totals)
    }

    /// Runs a batch of jobs, returning results in submission order.
    ///
    /// Guarantees:
    /// * **Determinism** — each result is a pure function of its job; the
    ///   worker count changes only the wall clock.
    /// * **Caching** — jobs whose key is already filed execute zero flows;
    ///   identical jobs within the batch execute once.
    /// * **Isolation** — one panicking or failing job fails only itself.
    pub fn run_batch(&self, jobs: &[Job]) -> BatchReport {
        self.run_batch_with_journal(jobs, None)
            .expect("a journal-free batch cannot fail")
    }

    /// [`Engine::run_batch`] with an optional write-ahead journal. With a
    /// journal, the batch plan (including every job) and all cache hits
    /// are durably recorded *before* anything is submitted, and each
    /// outcome is recorded as it lands — so a SIGKILL at any point leaves
    /// enough on disk for `--resume` to finish the run without redoing
    /// completed work.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Io`] if a journal write fails. A broken
    /// journal voids the crash-safety contract, so — unlike a cache
    /// store failure — it fails the batch loudly. In-flight jobs still
    /// drain (and their results reach the cache) before the error is
    /// returned.
    pub fn run_batch_with_journal(
        &self,
        jobs: &[Job],
        mut journal: Option<&mut Journal>,
    ) -> Result<BatchReport, JobError> {
        let _batch_span = obs::span("engine.batch")
            .attr("jobs", jobs.len())
            .attr("journaled", journal.is_some());
        let started = Instant::now();
        let quarantined_before = self.cache.quarantined();
        let stale_before = self.cache.stale();
        let mut metrics = BatchMetrics {
            jobs: jobs.len(),
            ..BatchMetrics::default()
        };
        let mut slots: Vec<Option<Result<JobReport, JobError>>> = vec![None; jobs.len()];

        // Phase 1: classify every job — cache hit, in-batch duplicate, or
        // planned for execution — without submitting anything yet, so the
        // full plan can be journaled before the first flow starts.
        struct Planned {
            key: String,
            job: Job,
            slots: Vec<usize>,
        }
        let mut planned: Vec<Planned> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        let mut hit_keys: Vec<String> = Vec::new();

        for (i, job) in jobs.iter().enumerate() {
            let key = job.key();
            if let Some(hit) = self.cache.get(&key) {
                metrics.cache_hits += 1;
                hit_keys.push(key);
                slots[i] = Some(Ok(hit));
                continue;
            }
            obs::counter("jobs.cache_misses").inc();
            if let Some(&pi) = by_key.get(&key) {
                metrics.deduped += 1;
                planned[pi].slots.push(i);
                continue;
            }
            by_key.insert(key.clone(), planned.len());
            planned.push(Planned {
                key,
                job: job.clone(),
                slots: vec![i],
            });
        }
        hit_keys.sort();
        hit_keys.dedup();

        // Phase 2: one durable journal batch — the plan, what the cache
        // already answered, and what is about to be submitted. One fsync.
        if let Some(j) = journal.as_deref_mut() {
            let mut recs = Vec::with_capacity(1 + hit_keys.len() + planned.len());
            recs.push(JournalRecord::BatchPlanned {
                run_id: j.run_id().to_string(),
                fingerprint: tdsigma_core::engine_fingerprint().to_string(),
                jobs: jobs.to_vec(),
            });
            for key in &hit_keys {
                recs.push(JournalRecord::JobFinished { key: key.clone() });
            }
            for p in &planned {
                recs.push(JournalRecord::JobStarted { key: p.key.clone() });
            }
            j.append_all(&recs)?;
        }

        // Phase 3: submit, then drain outcomes, journaling each as it
        // lands. A journal failure mid-drain is remembered but the drain
        // completes — in-flight results still reach the cache.
        struct Pending {
            key: String,
            rx: mpsc::Receiver<JobOutcome>,
            slots: Vec<usize>,
        }
        let pending: Vec<Pending> = planned
            .into_iter()
            .map(|p| Pending {
                rx: self.pool.submit(p.job),
                key: p.key,
                slots: p.slots,
            })
            .collect();
        let mut journal_err: Option<JobError> = None;

        for p in pending {
            let outcome = p.rx.recv().unwrap_or(JobOutcome {
                result: Err(JobError::PoolClosed),
                attempts: 0,
                exec_ms: 0.0,
                backoff_ms: 0.0,
                injected_faults: 0,
                stages: Default::default(),
            });
            if outcome.attempts > 0 {
                metrics.executed += 1;
                metrics.retried += outcome.attempts.saturating_sub(1) as usize;
                metrics.exec_ms_total += outcome.exec_ms;
                metrics.exec_ms_max = metrics.exec_ms_max.max(outcome.exec_ms);
                metrics.stages.accumulate(&outcome.stages);
            }
            metrics.faults_injected += outcome.injected_faults as usize;
            metrics.backoff_ms_total += outcome.backoff_ms;
            let record: Option<JournalRecord> = match &outcome.result {
                Ok(_) => Some(JournalRecord::JobFinished { key: p.key.clone() }),
                // Canceled jobs are neither finished nor permanently
                // degraded: leaving them unjournaled makes a resume pick
                // them up again, which is the right semantics.
                Err(JobError::Canceled) => None,
                Err(e) => Some(JournalRecord::JobDegraded {
                    key: p.key.clone(),
                    error: e.to_string(),
                    retryable: e.is_retryable(),
                }),
            };
            let shared: Result<JobReport, JobError> = match outcome.result {
                Ok(report) => {
                    // Cache failures must not fail the job: the report is
                    // in hand; persistence is best-effort — but visibly
                    // best-effort.
                    if let Err(e) = self.cache.put(&report) {
                        metrics.cache_store_failures += 1;
                        obs::counter("jobs.cache_store_failures").inc();
                        if obs::tracing_enabled() {
                            obs::event(
                                "cache.store_failure",
                                &[("key", report.key.clone()), ("error", e.to_string())],
                            );
                        }
                    }
                    Ok(report)
                }
                Err(e) => {
                    match e {
                        JobError::Canceled => metrics.canceled += p.slots.len(),
                        _ => metrics.failed += p.slots.len(),
                    }
                    Err(e)
                }
            };
            // Journal *after* the cache write, so a journaled
            // `job_finished` implies the artifact rename already
            // happened (or was counted as a store failure).
            if journal_err.is_none() {
                if let (Some(j), Some(rec)) = (journal.as_deref_mut(), &record) {
                    if let Err(e) = j.append(rec) {
                        journal_err = Some(e);
                    }
                }
            }
            for &slot in &p.slots {
                slots[slot] = Some(shared.clone());
            }
        }

        metrics.cache_quarantined = self.cache.quarantined() - quarantined_before;
        metrics.cache_stale = self.cache.stale() - stale_before;
        metrics.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let results: Vec<_> = slots
            .into_iter()
            .map(|s| s.expect("every slot filled by cache, dedup, or execution"))
            .collect();

        let mut totals = crate::pool::lock_unpoisoned(&self.totals);
        totals.jobs += metrics.jobs;
        totals.cache_hits += metrics.cache_hits;
        totals.executed += metrics.executed;
        totals.failed += metrics.failed;
        drop(totals);
        metrics.publish();

        if let Some(e) = journal_err {
            return Err(e);
        }
        Ok(BatchReport { results, metrics })
    }

    /// Answers one job — from the cache if possible, otherwise through
    /// the pool. Safe to call from many threads concurrently.
    ///
    /// # Errors
    ///
    /// Propagates the job's execution error.
    pub fn submit_one(&self, job: &Job) -> Result<JobReport, JobError> {
        self.submit_one_with_deadline(job, 0)
    }

    /// [`Engine::submit_one`] with a per-job soft deadline in ms
    /// (0 = pool policy). The deadline bounds attempt wall time only; it
    /// never reaches the job key or the report, so a deadline-carrying
    /// request that completes produces the same bytes as one without.
    ///
    /// # Errors
    ///
    /// Propagates the job's execution error.
    pub fn submit_one_with_deadline(
        &self,
        job: &Job,
        deadline_ms: u64,
    ) -> Result<JobReport, JobError> {
        let key = job.key();
        if let Some(hit) = self.cache.get(&key) {
            let mut totals = crate::pool::lock_unpoisoned(&self.totals);
            totals.jobs += 1;
            totals.cache_hits += 1;
            obs::counter("jobs.cache_hits").inc();
            return Ok(hit);
        }
        obs::counter("jobs.cache_misses").inc();
        let outcome = self
            .pool
            .submit_with_deadline(job.clone(), deadline_ms)
            .recv()
            .map_err(|_| JobError::PoolClosed)?;
        let mut totals = crate::pool::lock_unpoisoned(&self.totals);
        totals.jobs += 1;
        if outcome.attempts > 0 {
            totals.executed += 1;
            obs::counter("jobs.executed").inc();
        }
        if outcome.result.is_err() {
            totals.failed += 1;
            obs::counter("jobs.failed").inc();
        }
        drop(totals);
        if let Ok(report) = &outcome.result {
            let _ = self.cache.put(report);
        }
        outcome.result
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers())
            .field("cache_dir", &self.cache.disk_dir())
            .field("totals", &self.totals())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageTimes;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_runner() -> (Arc<AtomicUsize>, Arc<Runner>) {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        let runner: Arc<Runner> = Arc::new(move |job: &Job| {
            c.fetch_add(1, Ordering::SeqCst);
            Ok((
                JobReport {
                    key: job.key(),
                    job: job.clone(),
                    fin_hz: 1e6,
                    sndr_db: 50.0 + job.seed as f64,
                    enob: 8.0,
                    power_mw: None,
                    digital_fraction: None,
                    area_mm2: None,
                    fom_fj: None,
                    timing_slack_ps: None,
                },
                StageTimes {
                    build_ms: 0.1,
                    execute_ms: 1.0,
                    analyze_ms: 0.1,
                },
            ))
        });
        (count, runner)
    }

    fn jobs_with_seeds(seeds: &[u64]) -> Vec<Job> {
        seeds
            .iter()
            .map(|&s| {
                let mut j = Job::sim(40.0, 750e6, 5e6);
                j.seed = s;
                j
            })
            .collect()
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let (_, runner) = counting_runner();
        let engine = Engine::with_runner(
            EngineConfig {
                pool: PoolConfig {
                    workers: 4,
                    retries: 0,
                    ..PoolConfig::default()
                },
                cache_dir: None,
                faults: Default::default(),
            },
            runner,
        )
        .unwrap();
        let jobs = jobs_with_seeds(&[5, 3, 9, 1, 7]);
        let batch = engine.run_batch(&jobs);
        let sndrs: Vec<f64> = batch
            .results
            .iter()
            .map(|r| r.as_ref().unwrap().sndr_db)
            .collect();
        assert_eq!(sndrs, vec![55.0, 53.0, 59.0, 51.0, 57.0]);
        assert_eq!(batch.metrics.executed, 5);
        assert!(batch.metrics.exec_ms_total > 0.0);
    }

    #[test]
    fn in_batch_duplicates_execute_once() {
        let (count, runner) = counting_runner();
        let engine = Engine::with_runner(
            EngineConfig {
                pool: PoolConfig {
                    workers: 2,
                    retries: 0,
                    ..PoolConfig::default()
                },
                cache_dir: None,
                faults: Default::default(),
            },
            runner,
        )
        .unwrap();
        let jobs = jobs_with_seeds(&[1, 2, 1, 1, 2]);
        let batch = engine.run_batch(&jobs);
        assert_eq!(count.load(Ordering::SeqCst), 2, "two distinct jobs");
        assert_eq!(batch.metrics.deduped, 3);
        assert_eq!(
            batch.results[0].as_ref().unwrap(),
            batch.results[2].as_ref().unwrap()
        );
    }

    #[test]
    fn second_batch_is_all_cache_hits() {
        let (count, runner) = counting_runner();
        let engine = Engine::with_runner(
            EngineConfig {
                pool: PoolConfig {
                    workers: 2,
                    retries: 0,
                    ..PoolConfig::default()
                },
                cache_dir: None,
                faults: Default::default(),
            },
            runner,
        )
        .unwrap();
        let jobs = jobs_with_seeds(&[1, 2, 3]);
        let first = engine.run_batch(&jobs);
        assert_eq!(first.metrics.executed, 3);
        let second = engine.run_batch(&jobs);
        assert_eq!(second.metrics.executed, 0, "warm cache executes nothing");
        assert_eq!(second.metrics.cache_hits, 3);
        assert_eq!(count.load(Ordering::SeqCst), 3);
        for (a, b) in first.results.iter().zip(&second.results) {
            assert_eq!(
                a.as_ref().unwrap().to_text(),
                b.as_ref().unwrap().to_text(),
                "cached replay must be bit-identical"
            );
        }
    }

    #[test]
    fn totals_accumulate_across_batches() {
        let (_, runner) = counting_runner();
        let engine = Engine::with_runner(
            EngineConfig {
                pool: PoolConfig {
                    workers: 1,
                    retries: 0,
                    ..PoolConfig::default()
                },
                cache_dir: None,
                faults: Default::default(),
            },
            runner,
        )
        .unwrap();
        let jobs = jobs_with_seeds(&[1, 2]);
        engine.run_batch(&jobs);
        engine.run_batch(&jobs);
        let totals = engine.totals();
        assert_eq!(totals.jobs, 4);
        assert_eq!(totals.executed, 2);
        assert_eq!(totals.cache_hits, 2);
    }
}
