//! Multi-backend dispatch: failover, circuit breakers, local fallback.
//!
//! The [`Dispatcher`] turns a fleet of `tdsigma serve` backends into one
//! [`Runner`]: plug it into [`crate::Engine::with_runner`] and every existing
//! engine feature — content-addressed cache, write-ahead journal,
//! `--resume`, batch metrics — works over the network unchanged, because
//! a [`crate::JobReport`] is a pure function of its [`Job`] no matter
//! which machine computed it.
//!
//! The failure policy, in order:
//!
//! 1. **Rotation.** Jobs round-robin across backends whose breaker
//!    admits them (plus local, when `local` was listed as a member).
//! 2. **Failover.** A backend-class failure ([`RemoteError::Backend`])
//!    records against that backend's breaker and the job immediately
//!    moves to the next candidate. A job-class rejection
//!    ([`RemoteError::Job`]) is deterministic — every backend would
//!    answer the same — so it propagates without burning the fleet.
//!    A structured busy/shed rejection ([`RemoteError::Busy`]) is
//!    neither: the backend is demonstrably alive, just full. It counts
//!    as breaker *success*, the advertised `retry_after_ms` becomes a
//!    dispatch-side cooldown during which the rotation skips the
//!    backend, and the job fails over like any transient miss.
//! 3. **Circuit breaker.** After [`BreakerConfig::failure_threshold`]
//!    consecutive failures a backend's breaker opens and the rotation
//!    skips it; after [`BreakerConfig::cooldown_ms`] one half-open probe
//!    job is admitted — success re-closes the breaker, failure re-opens
//!    it for another cooldown. This keeps a dead peer from taxing every
//!    job with a connect timeout.
//! 4. **Hedging** (optional, off by default). When a dispatched job has
//!    produced nothing within `hedge_ms`, the same job is also sent to
//!    the next admitted backend and the first answer wins. Safe because
//!    jobs are deterministic and cached: a duplicate execution wastes
//!    cycles, never correctness.
//! 5. **Local fallback.** When every backend is down or skipped, the
//!    job runs in-process on the wrapped local runner. A sweep never
//!    fails solely because the fleet did; the degradation is counted
//!    (`dispatch.local_fallback`) and warned once on stderr.
//! 6. **Result integrity** (optional, off by default). With
//!    [`DispatchConfig::verify_permille`] non-zero, a deterministic
//!    sample of remote results — drawn by hashing the report key, so
//!    the same keys verify on every run and on `--resume` — is
//!    redundantly re-executed on a second backend or the local engine
//!    and compared byte-for-byte. Reports are pure functions of their
//!    jobs, so any disagreement proves corruption: the backend that
//!    disagrees with the local recomputation is **integrity-quarantined**
//!    (excluded for the rest of the run, never re-probed — unlike a
//!    breaker, there is no recovering from lying) and the verified
//!    bytes win. Hedged duplicates that both complete are cross-checked
//!    the same way for free.
//!
//! Per-backend instrumentation lands in `tdsigma-obs` under
//! `dispatch.<addr>.…`: `dispatched`/`failed`/`retried`/`hedged`/
//! `integrity_failures` counters, a `breaker` gauge (0 = closed,
//! 1 = half-open, 2 = open) and an `rtt` histogram.
//! [`Dispatcher::summary`] snapshots the same numbers for end-of-sweep
//! reporting.

use crate::error::JobError;
use crate::faults::{FaultPlan, VERIFY_BASIS};
use crate::job::Job;
use crate::metrics::{BackendDispatchStats, DispatchSummary, StageTimes};
use crate::pool::{lock_unpoisoned, Runner};
use crate::remote::{BackendHealth, RemoteClient, RemoteConfig, RemoteError};
use crate::report::JobReport;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Whole milliseconds elapsed since `start` (saturating u64 cast).
fn elapsed_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive backend-class failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before admitting one half-open
    /// probe, ms.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 5_000,
        }
    }
}

/// Where a breaker currently stands. Reported as a gauge: closed = 0,
/// half-open = 1, open = 2 — higher is worse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Cooling down; everything is rejected until the cooldown elapses.
    Open,
    /// One probe is in flight; its outcome decides open vs closed.
    HalfOpen,
}

impl BreakerState {
    /// The gauge encoding (0/1/2, higher is worse).
    pub fn gauge_value(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// A per-backend circuit breaker.
///
/// `admit` is a *claim*, not a query: when it returns `true` the caller
/// has committed to one attempt and must follow up with exactly one
/// `record_success` or `record_failure` — in the half-open state the
/// admitted call *is* the probe, and a second caller is rejected until
/// the probe reports back.
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        // Nothing in here panics while holding the guard, but recover
        // from poisoning anyway: the state is a plain value with no
        // multi-step invariant.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims permission for one attempt (see the type docs).
    pub fn admit(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false, // a probe is already out
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_none_or(|t| t.elapsed() >= Duration::from_millis(self.config.cooldown_ms));
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    true // this caller carries the probe
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful attempt: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Reports a failed attempt: extends the streak and opens the
    /// breaker at the threshold (a failed half-open probe re-opens it
    /// immediately).
    pub fn record_failure(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = inner.state == BreakerState::HalfOpen
            || inner.consecutive_failures >= self.config.failure_threshold;
        if trip {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
        }
    }

    /// The current state (for gauges and tests).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }
}

/// Dispatcher tuning: the fleet plus the failure policy.
#[derive(Debug, Clone, Default)]
pub struct DispatchConfig {
    /// Backend addresses (`host:port`), in rotation order.
    pub backends: Vec<String>,
    /// Whether `local` was listed as a fleet member: in-process
    /// execution joins the rotation instead of being only the
    /// last-resort fallback.
    pub local_in_rotation: bool,
    /// Connection deadlines shared by every backend client.
    pub remote: RemoteConfig,
    /// Per-backend breaker tuning.
    pub breaker: BreakerConfig,
    /// Hedge delay, ms; 0 disables hedging.
    pub hedge_ms: u64,
    /// Per-job wall-clock budget forwarded to backends as
    /// `deadline_ms`; 0 disables deadline propagation. Each failover or
    /// hedge attempt forwards only the *remaining* budget, so a backend
    /// can refuse work the job has no time left for.
    pub deadline_ms: u64,
    /// Client id attached to every frame for per-client admission
    /// quotas; empty uses a pid-derived default.
    pub client_id: String,
    /// Deterministic network-fault injection for chaos runs.
    pub faults: FaultPlan,
    /// Sampled redundant verification rate, permille (0 disables — the
    /// zero-cost default; 1000 verifies every remote result). The sample
    /// is drawn by hashing the report key, so it is stable across runs
    /// and resumes, independent of scheduling.
    pub verify_permille: u16,
}

/// One backend plus its breaker and instrumentation.
struct Backend {
    client: RemoteClient,
    breaker: CircuitBreaker,
    /// Until when a busy/shed rejection asked us to stay away. Distinct
    /// from the breaker: the backend is healthy, just full, so tripping
    /// Closed→Open (and burning the failure streak) would be wrong.
    cooldown_until: Mutex<Option<Instant>>,
    /// Whether the backend last advertised an engine fingerprint
    /// different from this process's. A skewed backend is excluded from
    /// dispatch — its reports are not interchangeable with ours — until
    /// a later verification (e.g. a half-open probe after it was
    /// replaced) sees matching fingerprints again.
    skewed: AtomicBool,
    /// Whether this backend returned result bytes that disagreed with a
    /// redundant recomputation. Terminal for the run: unlike a breaker
    /// (transient failures recover) or a skew mark (a replaced binary
    /// can rejoin), a backend caught lying about *values* is never
    /// probed or trusted again.
    integrity_quarantined: AtomicBool,
}

impl Backend {
    fn gauge(&self) {
        tdsigma_obs::gauge(&format!("dispatch.{}.breaker", self.client.addr()))
            .set(self.breaker.state().gauge_value());
    }

    fn skewed(&self) -> bool {
        self.skewed.load(Ordering::Relaxed)
    }

    fn quarantined(&self) -> bool {
        self.integrity_quarantined.load(Ordering::Relaxed)
    }

    /// Marks this backend integrity-quarantined: its bytes disagreed
    /// with a redundant recomputation. Counted per backend and warned
    /// once on stderr.
    fn mark_integrity_failure(&self) {
        tdsigma_obs::counter(&format!(
            "dispatch.{}.integrity_failures",
            self.client.addr()
        ))
        .inc();
        if !self.integrity_quarantined.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: backend {} integrity-quarantined: its report bytes disagree \
                 with redundant recomputation",
                self.client.addr(),
            );
        }
    }

    /// Health-checks the backend and compares its advertised engine
    /// fingerprint against this process's. Returns `true` only for a
    /// reachable backend with a matching fingerprint (clearing any skew
    /// mark); a mismatch marks the backend skewed and counts under
    /// `dispatch.<addr>.version_skew`.
    fn verify_fingerprint(&self) -> bool {
        match self.client.health() {
            Ok(h) if h.fingerprint == tdsigma_core::engine_fingerprint() => {
                self.skewed.store(false, Ordering::Relaxed);
                true
            }
            Ok(h) => {
                self.mark_skewed(&h.fingerprint);
                false
            }
            Err(_) => false,
        }
    }

    fn mark_skewed(&self, theirs: &str) {
        tdsigma_obs::counter(&format!("dispatch.{}.version_skew", self.client.addr())).inc();
        if !self.skewed.swap(true, Ordering::Relaxed) {
            let theirs = if theirs.is_empty() { "unknown" } else { theirs };
            eprintln!(
                "warning: backend {} excluded: engine fingerprint {} != local {}",
                self.client.addr(),
                theirs,
                tdsigma_core::engine_fingerprint(),
            );
        }
    }

    /// Whether a `retry_after_ms` cooldown from a busy rejection is
    /// still running.
    fn cooling(&self) -> bool {
        let guard = self
            .cooldown_until
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.is_some_and(|until| Instant::now() < until)
    }

    fn set_cooldown(&self, retry_after_ms: u64) {
        let mut guard = self
            .cooldown_until
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *guard = Some(Instant::now() + Duration::from_millis(retry_after_ms));
    }

    /// One full attempt: counters, RTT, breaker bookkeeping.
    fn attempt(&self, job: &Job, deadline_ms: Option<u64>) -> Result<JobReport, RemoteError> {
        let addr = self.client.addr();
        tdsigma_obs::counter(&format!("dispatch.{addr}.dispatched")).inc();
        let start = Instant::now();
        let result = self.client.run_job_with_deadline(job, deadline_ms);
        tdsigma_obs::histogram(&format!("dispatch.{addr}.rtt")).record(start.elapsed());
        match &result {
            // A job-class rejection means the backend held up its end of
            // the protocol: the breaker records success.
            Ok(_) | Err(RemoteError::Job(_)) => self.breaker.record_success(),
            // Busy is a healthy backend protecting itself: success for
            // the breaker (it also resolves a half-open probe — the
            // peer answered), plus a rotation cooldown for as long as
            // it asked to be left alone.
            Err(RemoteError::Busy { retry_after_ms, .. }) => {
                tdsigma_obs::counter(&format!("dispatch.{addr}.shed_deferred")).inc();
                self.set_cooldown(*retry_after_ms);
                self.breaker.record_success();
            }
            Err(RemoteError::Backend(_)) => {
                tdsigma_obs::counter(&format!("dispatch.{addr}.failed")).inc();
                self.breaker.record_failure();
            }
        }
        self.gauge();
        result
    }
}

/// The candidates one job rotates through.
enum Candidate {
    Remote(usize),
    Local,
}

/// What one pass over the rotation produced. The definitive answer is
/// boxed so the whole enum stays pointer-sized next to the flag-only
/// variants.
enum RoundOutcome {
    /// A definitive answer (success, or a deterministic job error).
    Done(Box<Result<(JobReport, StageTimes), JobError>>),
    /// At least one backend said "busy, come back in `wait_ms`" (or was
    /// still cooling from an earlier busy) and nothing succeeded.
    Busy { wait_ms: u64, local_tried: bool },
    /// Every candidate failed or was breaker-skipped.
    Exhausted { local_tried: bool },
}

/// A fleet of backends behind a [`Runner`]-shaped interface.
pub struct Dispatcher {
    backends: Vec<Arc<Backend>>,
    local: Arc<Runner>,
    local_in_rotation: bool,
    hedge_ms: u64,
    deadline_ms: u64,
    verify_permille: u16,
    /// Report keys already verified (this run, or replayed from the
    /// journal on `--resume`): never re-verified.
    verified: Mutex<HashSet<String>>,
    /// Keys verified since the last [`Dispatcher::drain_verified`] —
    /// what the caller journals so a resume skips re-verification.
    fresh_verified: Mutex<Vec<String>>,
    rotation: AtomicUsize,
    fallback_warned: AtomicBool,
    local_fallbacks: AtomicUsize,
}

impl Dispatcher {
    /// Builds a dispatcher over `config.backends`, with `local` as the
    /// in-process runner (rotation member or last-resort fallback).
    pub fn new(config: &DispatchConfig, local: Arc<Runner>) -> Arc<Self> {
        let client_id = if config.client_id.is_empty() {
            format!("dispatch-{}", std::process::id())
        } else {
            config.client_id.clone()
        };
        let backends = config
            .backends
            .iter()
            .map(|addr| {
                Arc::new(Backend {
                    client: RemoteClient::with_config(addr.clone(), config.remote.clone())
                        .with_client_id(client_id.clone())
                        .with_faults(config.faults),
                    breaker: CircuitBreaker::new(config.breaker.clone()),
                    cooldown_until: Mutex::new(None),
                    skewed: AtomicBool::new(false),
                    integrity_quarantined: AtomicBool::new(false),
                })
            })
            .collect();
        Arc::new(Dispatcher {
            backends,
            local,
            local_in_rotation: config.local_in_rotation,
            hedge_ms: config.hedge_ms,
            deadline_ms: config.deadline_ms,
            verify_permille: config.verify_permille,
            verified: Mutex::new(HashSet::new()),
            fresh_verified: Mutex::new(Vec::new()),
            rotation: AtomicUsize::new(0),
            fallback_warned: AtomicBool::new(false),
            local_fallbacks: AtomicUsize::new(0),
        })
    }

    /// Seeds the already-verified key set from a journal replay: these
    /// keys were verified in a previous run of the same sweep, so a
    /// `--resume` must not pay for re-verifying them.
    pub fn seed_verified(&self, keys: impl IntoIterator<Item = String>) {
        lock_unpoisoned(&self.verified).extend(keys);
    }

    /// Drains the report keys verified since the last call. The caller
    /// journals them ([`crate::JournalRecord::JobVerified`]) so a resume
    /// inherits the verification work already paid for.
    pub fn drain_verified(&self) -> Vec<String> {
        std::mem::take(&mut *lock_unpoisoned(&self.fresh_verified))
    }

    /// Health-checks every backend once (the startup probe). Returns
    /// `(addr, health)` per backend; `None` marks an unreachable peer —
    /// which also seeds its breaker with a failure, so a fleet that is
    /// down at startup stops being retried almost immediately. A
    /// reachable backend advertising a different engine fingerprint is
    /// marked skewed here — registration is the first exclusion point —
    /// and the rotation will refuse to give it jobs.
    pub fn probe(&self) -> Vec<(String, Option<BackendHealth>)> {
        self.backends
            .iter()
            .map(|b| {
                let health = match b.client.health() {
                    Ok(h) => {
                        b.breaker.record_success();
                        if h.fingerprint == tdsigma_core::engine_fingerprint() {
                            b.skewed.store(false, Ordering::Relaxed);
                        } else {
                            b.mark_skewed(&h.fingerprint);
                        }
                        Some(h)
                    }
                    Err(_) => {
                        b.breaker.record_failure();
                        None
                    }
                };
                b.gauge();
                (b.client.addr().to_string(), health)
            })
            .collect()
    }

    /// Wraps this dispatcher as the engine's [`Runner`].
    pub fn into_runner(self: &Arc<Self>) -> Arc<Runner> {
        let this = Arc::clone(self);
        Arc::new(move |job: &Job| this.run_job(job))
    }

    /// Executes one job somewhere: rotation → failover → breaker →
    /// hedge → local fallback, per the module docs.
    ///
    /// # Errors
    ///
    /// Only job-class errors surface (a deterministic rejection, or the
    /// local runner's own failure after every backend was exhausted) —
    /// never "a backend was down".
    pub fn run_job(&self, job: &Job) -> Result<(JobReport, StageTimes), JobError> {
        let started = Instant::now();
        // An all-busy fleet is temporary by definition: honor the
        // smallest advertised retry_after (bounded) for a couple of
        // rounds before degrading to local execution.
        const BUSY_ROUNDS: u32 = 3;
        let mut round = 0;
        loop {
            match self.dispatch_round(job, started) {
                RoundOutcome::Done(result) => return *result,
                RoundOutcome::Busy {
                    wait_ms,
                    local_tried,
                } => {
                    round += 1;
                    let wait_ms = wait_ms.clamp(10, 2_000);
                    let within_budget =
                        self.deadline_ms == 0 || elapsed_ms(started) + wait_ms < self.deadline_ms;
                    if round < BUSY_ROUNDS && within_budget {
                        std::thread::sleep(Duration::from_millis(wait_ms));
                        continue;
                    }
                    if local_tried {
                        return Err(JobError::Failed {
                            attempts: round,
                            message: "every backend stayed busy (local already failed)".into(),
                        });
                    }
                    return self.local_fallback(job);
                }
                RoundOutcome::Exhausted { local_tried: true } => {
                    // Local already ran (and failed retryably) as a
                    // rotation member; re-running it cannot go better.
                    return Err(JobError::Failed {
                        attempts: 1,
                        message: "every backend (including local) failed".into(),
                    });
                }
                RoundOutcome::Exhausted { local_tried: false } => return self.local_fallback(job),
            }
        }
    }

    /// The remaining deadline budget to forward with an attempt, if
    /// deadline propagation is on. Never reaches zero: a provably-late
    /// job is the *server's* call to reject (structured, retryable),
    /// not something to silently strip back to "no deadline".
    fn remaining_budget(&self, started: Instant) -> Option<u64> {
        if self.deadline_ms == 0 {
            return None;
        }
        Some(self.deadline_ms.saturating_sub(elapsed_ms(started)).max(1))
    }

    /// One pass over the rotation: rotation → failover → breaker →
    /// hedge, classifying how the pass ended.
    fn dispatch_round(&self, job: &Job, started: Instant) -> RoundOutcome {
        let candidates = self.rotation(job);
        let mut local_tried = false;
        let mut busy_wait: Option<u64> = None;
        let mut note_busy = |wait: u64| {
            busy_wait = Some(busy_wait.map_or(wait, |w| w.min(wait)));
        };
        for (slot, candidate) in candidates.iter().enumerate() {
            match candidate {
                Candidate::Local => {
                    local_tried = true;
                    match (self.local)(job) {
                        Ok(out) => return RoundOutcome::Done(Box::new(Ok(out))),
                        // In rotation, a local failure fails over to the
                        // remotes like any other backend-class failure —
                        // unless it is deterministic.
                        Err(e) if e.is_retryable() => continue,
                        Err(e) => return RoundOutcome::Done(Box::new(Err(e))),
                    }
                }
                Candidate::Remote(i) => {
                    let backend = &self.backends[*i];
                    if backend.quarantined() {
                        // Integrity quarantine is terminal for the run:
                        // no probe, no cooldown, no breaker claim.
                        continue;
                    }
                    if backend.cooling() {
                        // A busy rejection's retry_after is still
                        // running; skip without waking the backend.
                        note_busy(100);
                        continue;
                    }
                    if !backend.breaker.admit() {
                        backend.gauge();
                        continue;
                    }
                    // A marked-skewed backend, and every half-open
                    // probe, must re-prove fingerprint equality before
                    // carrying a job: the probe is how a replaced
                    // binary (matching again) rejoins the rotation, and
                    // how a mismatched one keeps its breaker open
                    // instead of corrupting results. A failed check
                    // resolves the admit() claim as a failure.
                    let half_open = backend.breaker.state() == BreakerState::HalfOpen;
                    if (half_open || backend.skewed()) && !backend.verify_fingerprint() {
                        backend.breaker.record_failure();
                        backend.gauge();
                        continue;
                    }
                    let deadline = self.remaining_budget(started);
                    let result = if self.hedge_ms > 0 {
                        self.hedged_attempt(
                            backend,
                            self.next_admitted(&candidates[slot + 1..]),
                            job,
                            deadline,
                        )
                    } else {
                        backend
                            .attempt(job, deadline)
                            .map(|report| (report, Arc::clone(backend)))
                    };
                    match result {
                        Ok((report, origin)) => {
                            let report = self.verify_sampled(&origin, report, job, deadline);
                            return RoundOutcome::Done(Box::new(Ok((
                                report,
                                StageTimes::default(),
                            ))));
                        }
                        Err(RemoteError::Job(e)) => return RoundOutcome::Done(Box::new(Err(e))),
                        Err(RemoteError::Busy { retry_after_ms, .. }) => {
                            tdsigma_obs::counter(&format!(
                                "dispatch.{}.retried",
                                backend.client.addr()
                            ))
                            .inc();
                            note_busy(retry_after_ms);
                            continue;
                        }
                        Err(RemoteError::Backend(_)) => {
                            if slot + 1 < candidates.len() {
                                tdsigma_obs::counter(&format!(
                                    "dispatch.{}.retried",
                                    backend.client.addr()
                                ))
                                .inc();
                            }
                            continue;
                        }
                    }
                }
            }
        }
        match busy_wait {
            Some(wait_ms) => RoundOutcome::Busy {
                wait_ms,
                local_tried,
            },
            None => RoundOutcome::Exhausted { local_tried },
        }
    }

    /// Claims the first still-admissible backend among `rest` as a
    /// hedge target.
    fn next_admitted(&self, rest: &[Candidate]) -> Option<Arc<Backend>> {
        for candidate in rest {
            if let Candidate::Remote(i) = candidate {
                let backend = &self.backends[*i];
                // Skew and quarantine are checked before admit() so an
                // untrusted backend never carries a hedge (its answer
                // would not be interchangeable) and no breaker claim is
                // left dangling.
                if !backend.quarantined()
                    && !backend.cooling()
                    && !backend.skewed()
                    && backend.breaker.admit()
                {
                    return Some(Arc::clone(backend));
                }
            }
        }
        None
    }

    /// Sends the job to `primary`; if no answer lands within `hedge_ms`
    /// and a hedge target was claimed, sends it there too and takes the
    /// first answer. Deterministic jobs make the duplicate execution
    /// harmless. When *both* attempts happen to complete before the
    /// loser would be discarded, the two payloads are cross-checked
    /// byte-for-byte — a redundant verification that cost nothing extra
    /// — and any disagreement goes through the same local arbitration
    /// and integrity quarantine as sampled verification.
    fn hedged_attempt(
        &self,
        primary: &Arc<Backend>,
        hedge: Option<Arc<Backend>>,
        job: &Job,
        deadline_ms: Option<u64>,
    ) -> Result<(JobReport, Arc<Backend>), RemoteError> {
        type Answer = (Arc<Backend>, Result<JobReport, RemoteError>);
        let (tx, rx) = mpsc::channel::<Answer>();
        let spawn = |backend: Arc<Backend>, tx: mpsc::Sender<Answer>| {
            let job = job.clone();
            std::thread::spawn(move || {
                // The receiver may have taken an earlier answer and gone
                // away; the loser's send failing is expected.
                let result = backend.attempt(&job, deadline_ms);
                let _ = tx.send((backend, result));
            });
        };
        spawn(Arc::clone(primary), tx.clone());
        let mut in_flight = 1;
        let (first_from, first) = match rx.recv_timeout(Duration::from_millis(self.hedge_ms)) {
            Ok(answer) => answer,
            Err(_) => {
                if let Some(hedge) = hedge {
                    tdsigma_obs::counter(&format!("dispatch.{}.hedged", hedge.client.addr())).inc();
                    spawn(hedge, tx.clone());
                    in_flight += 1;
                }
                drop(tx);
                match rx.recv() {
                    Ok(answer) => answer,
                    Err(_) => return Err(RemoteError::Backend("hedge channel closed".into())),
                }
            }
        };
        // An admitted-but-unneeded hedge was never spawned, so `rx` has
        // at most one more answer. Prefer any success over an error.
        if let Ok(report) = first {
            if in_flight > 1 {
                // Opportunistic cross-check: if the losing attempt also
                // finished, its answer is already in the channel.
                if let Ok((other_from, Ok(other_report))) = rx.try_recv() {
                    if other_report.to_text() != report.to_text() {
                        tdsigma_obs::counter("dispatch.hedge_mismatch").inc();
                        return Ok(self.arbitrate_pair(
                            job,
                            (first_from, report),
                            (other_from, other_report),
                        ));
                    }
                    // Two independent backends agreeing is a redundant
                    // verification in its own right.
                    self.note_verified(&report.key);
                }
            }
            return Ok((report, first_from));
        }
        for _ in 1..in_flight {
            if let Ok((from, result)) = rx.recv() {
                if result.is_ok() || matches!(result, Err(RemoteError::Job(_))) {
                    return result.map(|report| (report, from));
                }
            }
        }
        first.map(|report| (report, first_from))
    }

    /// Two backends produced different bytes for the same job — one of
    /// them is lying. The local engine recomputes (reports are pure
    /// functions of their jobs, so the local bytes are ground truth) and
    /// whichever backend disagrees with it is integrity-quarantined; the
    /// verified bytes win. If local arbitration itself fails, no verdict
    /// is reached: nobody is quarantined, the primary's answer stands,
    /// and the miss is counted under `dispatch.verify_aborted`.
    fn arbitrate_pair(
        &self,
        job: &Job,
        primary: (Arc<Backend>, JobReport),
        other: (Arc<Backend>, JobReport),
    ) -> (JobReport, Arc<Backend>) {
        match (self.local)(job) {
            Ok((truth, _)) => {
                let text = truth.to_text();
                let primary_honest = primary.1.to_text() == text;
                let other_honest = other.1.to_text() == text;
                if !primary_honest {
                    primary.0.mark_integrity_failure();
                }
                if !other_honest {
                    other.0.mark_integrity_failure();
                }
                self.note_verified(&truth.key);
                if primary_honest {
                    (primary.1, primary.0)
                } else if other_honest {
                    (other.1, other.0)
                } else {
                    // Both lied: the local recomputation is the result.
                    (truth, primary.0)
                }
            }
            Err(_) => {
                tdsigma_obs::counter("dispatch.verify_aborted").inc();
                (primary.1, primary.0)
            }
        }
    }

    /// Sampled redundant verification of one remote result. Zero-cost
    /// when disabled; otherwise the report key's hash decides — stably
    /// across runs and resumes — whether this result is re-executed on a
    /// second backend or the local engine and compared byte-for-byte.
    /// On a mismatch the local engine arbitrates, the lying backend is
    /// integrity-quarantined, and the verified bytes are returned — so
    /// the sweep output stays byte-identical to a local run.
    fn verify_sampled(
        &self,
        origin: &Arc<Backend>,
        report: JobReport,
        job: &Job,
        deadline_ms: Option<u64>,
    ) -> JobReport {
        if self.verify_permille == 0 {
            return report;
        }
        if self.verify_permille < 1000 {
            let draw = crate::faults::fnv1a64(report.key.as_bytes(), VERIFY_BASIS) % 1000;
            if draw >= self.verify_permille as u64 {
                return report;
            }
        }
        if lock_unpoisoned(&self.verified).contains(&report.key) {
            return report;
        }
        tdsigma_obs::counter("dispatch.verify_sampled").inc();
        // Second opinion from a different still-trusted backend when one
        // exists (spreads the verification load across the fleet);
        // otherwise the local engine referees directly.
        let second = self
            .verify_peer(origin)
            .map(|peer| (peer.attempt(job, deadline_ms), peer));
        match second {
            Some((Ok(peer_report), peer)) => {
                if peer_report.to_text() == report.to_text() {
                    self.note_verified(&report.key);
                    report
                } else {
                    tdsigma_obs::counter("dispatch.verify_mismatch").inc();
                    self.arbitrate_pair(job, (Arc::clone(origin), report), (peer, peer_report))
                        .0
                }
            }
            // No usable peer (none trusted, or the peer itself failed):
            // the local engine is the referee.
            Some((Err(_), _)) | None => match (self.local)(job) {
                Ok((truth, _)) => {
                    if truth.to_text() == report.to_text() {
                        self.note_verified(&report.key);
                        report
                    } else {
                        tdsigma_obs::counter("dispatch.verify_mismatch").inc();
                        origin.mark_integrity_failure();
                        self.note_verified(&truth.key);
                        truth
                    }
                }
                Err(_) => {
                    tdsigma_obs::counter("dispatch.verify_aborted").inc();
                    report
                }
            },
        }
    }

    /// The first still-trusted backend other than `origin` to use as a
    /// verification peer, claiming its breaker admission. `None` when
    /// the rest of the fleet is untrusted, cooling, or breaker-rejected.
    fn verify_peer(&self, origin: &Arc<Backend>) -> Option<Arc<Backend>> {
        self.backends
            .iter()
            .find(|b| {
                !Arc::ptr_eq(b, origin)
                    && !b.quarantined()
                    && !b.skewed()
                    && !b.cooling()
                    && b.breaker.admit()
            })
            .cloned()
    }

    /// Records `key` as verified (skipped by later samples, drained for
    /// journaling).
    fn note_verified(&self, key: &str) {
        if lock_unpoisoned(&self.verified).insert(key.to_string()) {
            lock_unpoisoned(&self.fresh_verified).push(key.to_string());
        }
    }

    /// Last-resort in-process execution, counted and warned once.
    fn local_fallback(&self, job: &Job) -> Result<(JobReport, StageTimes), JobError> {
        self.local_fallbacks.fetch_add(1, Ordering::Relaxed);
        tdsigma_obs::counter("dispatch.local_fallback").inc();
        if !self.fallback_warned.swap(true, Ordering::Relaxed) {
            eprintln!(
                "warning: all {} backend(s) unavailable; degrading to local execution",
                self.backends.len()
            );
        }
        (self.local)(job)
    }

    /// The rotation for one job: remote backends starting at a
    /// round-robin offset (keyed per call, so consecutive jobs start at
    /// consecutive backends), with local inserted at its rotation slot
    /// when it is a fleet member.
    fn rotation(&self, _job: &Job) -> Vec<Candidate> {
        let mut slots: Vec<Candidate> = (0..self.backends.len()).map(Candidate::Remote).collect();
        if self.local_in_rotation {
            slots.push(Candidate::Local);
        }
        if slots.len() > 1 {
            let start = self.rotation.fetch_add(1, Ordering::Relaxed) % slots.len();
            slots.rotate_left(start);
        }
        slots
    }

    /// Snapshot of per-backend counters and breaker states for
    /// end-of-sweep reporting.
    pub fn summary(&self) -> DispatchSummary {
        let backends = self
            .backends
            .iter()
            .map(|b| {
                let addr = b.client.addr();
                let get =
                    |what: &str| tdsigma_obs::counter(&format!("dispatch.{addr}.{what}")).get();
                BackendDispatchStats {
                    addr: addr.to_string(),
                    dispatched: get("dispatched"),
                    failed: get("failed"),
                    retried: get("retried"),
                    hedged: get("hedged"),
                    shed_deferred: get("shed_deferred"),
                    version_skew: get("version_skew"),
                    integrity_failures: get("integrity_failures"),
                    breaker_open: b.breaker.state() != BreakerState::Closed,
                }
            })
            .collect();
        DispatchSummary {
            backends,
            local_fallbacks: self.local_fallbacks.load(Ordering::Relaxed) as u64,
            local_in_rotation: self.local_in_rotation,
            unattested: tdsigma_obs::counter("dispatch.unattested").get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::pool::PoolConfig;
    use crate::server::{Server, ServerConfig};
    use std::sync::atomic::AtomicUsize;

    fn ok_report(job: &Job) -> (JobReport, StageTimes) {
        (
            JobReport {
                key: job.key(),
                job: job.clone(),
                fin_hz: job.input_frequency_hz(),
                sndr_db: 60.0 + job.seed as f64,
                enob: 9.7,
                power_mw: None,
                digital_fraction: None,
                area_mm2: None,
                fom_fj: None,
                timing_slack_ps: None,
            },
            StageTimes::default(),
        )
    }

    fn local_runner() -> Arc<Runner> {
        Arc::new(|job: &Job| Ok(ok_report(job)))
    }

    fn spawn_backend() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        spawn_backend_with_faults(crate::faults::FaultPlan::none())
    }

    fn spawn_backend_with_faults(
        faults: crate::faults::FaultPlan,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let runner: Arc<Runner> = Arc::new(|job: &Job| Ok(ok_report(job)));
        let engine = Arc::new(
            Engine::with_runner(
                EngineConfig {
                    pool: PoolConfig {
                        workers: 2,
                        retries: 0,
                        ..PoolConfig::default()
                    },
                    cache_dir: None,
                    faults,
                },
                runner,
            )
            .unwrap(),
        );
        let server = Server::bind_with(
            "127.0.0.1:0",
            engine,
            ServerConfig {
                allow_remote_shutdown: true,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn stop_backend(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
        use std::io::Write;
        if let Ok(mut s) = std::net::TcpStream::connect(addr) {
            let _ = s.write_all(b"{\"cmd\":\"shutdown\"}\n");
            let _ = std::io::BufRead::read_line(
                &mut std::io::BufReader::new(s.try_clone().unwrap()),
                &mut String::new(),
            );
        }
        let _ = handle.join();
    }

    /// A backend that answers every request with a structured shed
    /// rejection — alive, polite, and permanently full.
    fn spawn_busy_backend(retry_after_ms: u64) -> std::net::SocketAddr {
        use std::io::{BufRead, BufReader, Write};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                if reader.read_line(&mut line).is_err() {
                    continue;
                }
                let mut stream = stream;
                let _ = stream.write_all(
                    format!(
                        "{{\"ok\":false,\"error\":\"server is at capacity\",\
                         \"busy\":true,\"shed\":true,\"retry_after_ms\":{retry_after_ms}}}\n"
                    )
                    .as_bytes(),
                );
            }
        });
        addr
    }

    fn fast_config(backends: Vec<String>) -> DispatchConfig {
        DispatchConfig {
            backends,
            remote: RemoteConfig {
                connect_timeout_ms: 200,
                connect_attempts: 1,
                ..RemoteConfig::default()
            },
            ..DispatchConfig::default()
        }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 30,
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.admit());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed, "below threshold");
        assert!(breaker.admit());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open, "threshold trips");
        assert!(!breaker.admit(), "open rejects during cooldown");
        std::thread::sleep(Duration::from_millis(40));
        assert!(breaker.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.admit(), "only one probe at a time");
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open, "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(40));
        assert!(breaker.admit());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed, "good probe closes");
        // A success clears the streak: one new failure does not trip.
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }

    #[test]
    fn dispatch_runs_jobs_on_a_real_backend() {
        let (addr, handle) = spawn_backend();
        let dispatcher = Dispatcher::new(&fast_config(vec![addr.to_string()]), local_runner());
        let probes = dispatcher.probe();
        assert!(probes[0].1.is_some(), "backend must be reachable");
        let job = Job {
            seed: 9,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        let (report, _) = dispatcher.run_job(&job).expect("dispatched job");
        assert_eq!(report.key, job.key());
        assert_eq!(report.sndr_db, 69.0);
        let summary = dispatcher.summary();
        assert_eq!(summary.backends[0].dispatched, 1);
        assert_eq!(summary.local_fallbacks, 0);
        stop_backend(addr, handle);
    }

    #[test]
    fn all_backends_down_degrades_to_local() {
        // Nothing listens on these ports (connect is refused fast).
        // Each test uses distinct dead ports: the obs counters are
        // process-global and keyed by address.
        let dispatcher = Dispatcher::new(
            &fast_config(vec!["127.0.0.1:17".into(), "127.0.0.1:18".into()]),
            local_runner(),
        );
        let job = Job::sim(40.0, 750e6, 5e6);
        let (report, _) = dispatcher.run_job(&job).expect("local fallback");
        assert_eq!(report.key, job.key());
        let summary = dispatcher.summary();
        assert_eq!(summary.local_fallbacks, 1);
        assert!(summary.backends.iter().all(|b| b.failed >= 1));
    }

    #[test]
    fn failover_moves_a_job_to_the_healthy_backend() {
        let (addr, handle) = spawn_backend();
        // A dead first backend, a live second one: the job must land.
        let dispatcher = Dispatcher::new(
            &fast_config(vec!["127.0.0.1:11".into(), addr.to_string()]),
            local_runner(),
        );
        for seed in 0..4u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            let (report, _) = dispatcher.run_job(&job).expect("failover");
            assert_eq!(report.key, job.key());
        }
        let summary = dispatcher.summary();
        assert_eq!(summary.local_fallbacks, 0, "remote fleet handled it all");
        let live = summary.backends.iter().find(|b| b.addr == addr.to_string());
        assert_eq!(live.expect("live backend in summary").dispatched, 4);
        stop_backend(addr, handle);
    }

    #[test]
    fn breaker_opens_after_repeated_failures_and_skips_the_dead_peer() {
        let mut config = fast_config(vec!["127.0.0.1:19".into()]);
        config.breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 60_000,
        };
        let dispatcher = Dispatcher::new(&config, local_runner());
        for _ in 0..5 {
            dispatcher.run_job(&Job::sim(40.0, 750e6, 5e6)).unwrap();
        }
        let summary = dispatcher.summary();
        assert!(summary.backends[0].breaker_open);
        assert_eq!(
            summary.backends[0].dispatched, 2,
            "breaker must stop dispatch at the threshold"
        );
        assert_eq!(summary.local_fallbacks, 5);
    }

    #[test]
    fn local_in_rotation_shares_the_load() {
        let calls = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&calls);
        let local: Arc<Runner> = Arc::new(move |job: &Job| {
            counted.fetch_add(1, Ordering::SeqCst);
            Ok(ok_report(job))
        });
        let config = DispatchConfig {
            local_in_rotation: true,
            ..fast_config(vec![])
        };
        let dispatcher = Dispatcher::new(&config, local);
        for seed in 0..3u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            dispatcher.run_job(&job).expect("local member");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        assert_eq!(
            dispatcher.summary().local_fallbacks,
            0,
            "rotation membership is not degradation"
        );
    }

    #[test]
    fn busy_rejections_cool_down_without_tripping_the_breaker() {
        let busy = spawn_busy_backend(40);
        let dispatcher = Dispatcher::new(&fast_config(vec![busy.to_string()]), local_runner());
        for seed in 0..4u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            let (report, _) = dispatcher.run_job(&job).expect("local absorbs shed work");
            assert_eq!(report.key, job.key());
        }
        assert_eq!(
            dispatcher.backends[0].breaker.state(),
            BreakerState::Closed,
            "a healthy-but-full backend must never trip its breaker"
        );
        let summary = dispatcher.summary();
        assert!(!summary.backends[0].breaker_open);
        assert_eq!(
            summary.backends[0].failed, 0,
            "busy is not a backend-class failure"
        );
        assert!(
            summary.backends[0].shed_deferred >= 1,
            "cooldowns must be counted: {summary}"
        );
        assert_eq!(summary.local_fallbacks, 4, "every job still completed");
    }

    #[test]
    fn busy_backend_fails_over_to_a_healthy_peer() {
        let busy = spawn_busy_backend(30_000); // cools for the whole test
        let (live, handle) = spawn_backend();
        let dispatcher = Dispatcher::new(
            &fast_config(vec![busy.to_string(), live.to_string()]),
            local_runner(),
        );
        for seed in 0..4u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            let (report, _) = dispatcher.run_job(&job).expect("failover from busy");
            assert_eq!(report.key, job.key());
        }
        let summary = dispatcher.summary();
        assert_eq!(summary.local_fallbacks, 0, "the healthy peer took it all");
        assert!(
            summary.backends.iter().all(|b| !b.breaker_open),
            "{summary}"
        );
        let live_stats = summary.backends.iter().find(|b| b.addr == live.to_string());
        assert_eq!(live_stats.expect("live backend").dispatched, 4);
        let busy_stats = summary.backends.iter().find(|b| b.addr == busy.to_string());
        assert!(
            busy_stats.expect("busy backend").dispatched <= 1,
            "the 30s cooldown must keep the rotation away after one rejection"
        );
        stop_backend(live, handle);
    }

    #[test]
    fn mismatched_fingerprint_backend_is_excluded_not_trusted() {
        // A backend whose every supervision frame advertises a garbled
        // engine fingerprint: alive, fast — and not to be trusted.
        let (skewed, handle) = spawn_backend_with_faults(crate::faults::FaultPlan {
            seed: 11,
            wrong_fingerprint_permille: 1000,
            ..crate::faults::FaultPlan::none()
        });
        let dispatcher = Dispatcher::new(&fast_config(vec![skewed.to_string()]), local_runner());
        let probes = dispatcher.probe();
        assert!(
            probes[0].1.is_some(),
            "the backend is healthy at the transport level"
        );
        assert!(
            dispatcher.backends[0].skewed(),
            "the probe must mark the version skew"
        );
        for seed in 0..3u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            let (report, _) = dispatcher.run_job(&job).expect("local absorbs the work");
            assert_eq!(report.key, job.key());
        }
        let summary = dispatcher.summary();
        assert_eq!(
            summary.backends[0].dispatched, 0,
            "a skewed backend must never receive a job: {summary}"
        );
        assert!(
            summary.backends[0].version_skew >= 1,
            "skew must be counted: {summary}"
        );
        assert_eq!(summary.local_fallbacks, 3, "every job still completed");
        let rendered = summary.to_string();
        assert!(
            rendered.contains("DEGRADED: version_skew"),
            "the summary must flag the degradation: {rendered}"
        );
        stop_backend(skewed, handle);
    }

    #[test]
    fn lying_backend_is_integrity_quarantined_and_verified_bytes_win() {
        // A backend that computes correctly, then perturbs a report
        // value while keeping the key (and a self-consistent
        // attestation) intact. Only redundant recomputation can catch
        // it.
        let (liar, handle) = spawn_backend_with_faults(crate::faults::FaultPlan {
            seed: 83,
            lying_backend_permille: 1000,
            ..crate::faults::FaultPlan::none()
        });
        let config = DispatchConfig {
            verify_permille: 1000,
            ..fast_config(vec![liar.to_string()])
        };
        let dispatcher = Dispatcher::new(&config, local_runner());
        for seed in 0..3u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            let (report, _) = dispatcher.run_job(&job).expect("verified dispatch");
            // The verified bytes win: every answer matches what a pure
            // local run would have produced, lying backend or not.
            assert_eq!(report.to_text(), ok_report(&job).0.to_text());
        }
        assert!(
            dispatcher.backends[0].quarantined(),
            "first verified mismatch must integrity-quarantine the liar"
        );
        let summary = dispatcher.summary();
        assert_eq!(
            summary.backends[0].dispatched, 1,
            "a quarantined backend must never be re-probed this run: {summary}"
        );
        assert!(
            summary.backends[0].integrity_failures >= 1,
            "the mismatch must be counted: {summary}"
        );
        assert_eq!(summary.local_fallbacks, 2, "remaining jobs ran locally");
        let rendered = summary.to_string();
        assert!(
            rendered.contains("DEGRADED: integrity"),
            "the summary must flag the integrity degradation: {rendered}"
        );
        stop_backend(liar, handle);
    }

    #[test]
    fn verify_sample_zero_costs_nothing() {
        let (addr, handle) = spawn_backend();
        let local_calls = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&local_calls);
        let local: Arc<Runner> = Arc::new(move |job: &Job| {
            counted.fetch_add(1, Ordering::SeqCst);
            Ok(ok_report(job))
        });
        // verify_permille defaults to 0: sampling must be disabled.
        let dispatcher = Dispatcher::new(&fast_config(vec![addr.to_string()]), local);
        for seed in 0..4u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            dispatcher.run_job(&job).expect("dispatched job");
        }
        let summary = dispatcher.summary();
        assert_eq!(
            summary.backends[0].dispatched, 4,
            "exactly one dispatch per job, no verification re-dispatch"
        );
        assert_eq!(
            local_calls.load(Ordering::SeqCst),
            0,
            "no local recomputation when sampling is off"
        );
        assert!(
            dispatcher.drain_verified().is_empty(),
            "nothing was verified, nothing to journal"
        );
        stop_backend(addr, handle);
    }

    #[test]
    fn sampled_verification_referees_locally_and_remembers_verified_keys() {
        let (addr, handle) = spawn_backend();
        let local_calls = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&local_calls);
        let local: Arc<Runner> = Arc::new(move |job: &Job| {
            counted.fetch_add(1, Ordering::SeqCst);
            Ok(ok_report(job))
        });
        let config = DispatchConfig {
            verify_permille: 1000,
            ..fast_config(vec![addr.to_string()])
        };
        let dispatcher = Dispatcher::new(&config, local);
        let job = Job {
            seed: 5,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        dispatcher.run_job(&job).expect("verified dispatch");
        assert_eq!(
            local_calls.load(Ordering::SeqCst),
            1,
            "a single-backend fleet has no peer: the local engine referees"
        );
        assert_eq!(
            dispatcher.drain_verified(),
            vec![job.key()],
            "the verified key must surface exactly once for journaling"
        );
        assert!(dispatcher.drain_verified().is_empty(), "drain is a take");
        // The same key again: already verified, no second recomputation.
        dispatcher.run_job(&job).expect("re-dispatch");
        assert_eq!(local_calls.load(Ordering::SeqCst), 1);
        let summary = dispatcher.summary();
        assert_eq!(summary.backends[0].integrity_failures, 0);
        assert!(!dispatcher.backends[0].quarantined());
        stop_backend(addr, handle);
    }

    #[test]
    fn seeded_verified_keys_skip_resampling_on_resume() {
        let (addr, handle) = spawn_backend();
        let local_calls = Arc::new(AtomicUsize::new(0));
        let counted = Arc::clone(&local_calls);
        let local: Arc<Runner> = Arc::new(move |job: &Job| {
            counted.fetch_add(1, Ordering::SeqCst);
            Ok(ok_report(job))
        });
        let config = DispatchConfig {
            verify_permille: 1000,
            ..fast_config(vec![addr.to_string()])
        };
        let dispatcher = Dispatcher::new(&config, local);
        let job = Job {
            seed: 6,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        // A resume replays journaled verification outcomes into the
        // dispatcher before any job runs.
        dispatcher.seed_verified([job.key()]);
        dispatcher.run_job(&job).expect("dispatched job");
        assert_eq!(
            local_calls.load(Ordering::SeqCst),
            0,
            "a journaled verification must not be re-verified"
        );
        assert!(
            dispatcher.drain_verified().is_empty(),
            "seeded keys are not fresh: nothing new to journal"
        );
        stop_backend(addr, handle);
    }

    #[test]
    fn hedge_cross_check_arbitrates_with_local_ground_truth() {
        // Exercise the arbitration core directly: two backends returned
        // different bytes for the same job, and the local recomputation
        // decides which one lied. (No sockets needed — arbitration only
        // touches the local runner and the backend trust flags.)
        let dispatcher = Dispatcher::new(
            &fast_config(vec!["127.0.0.1:21".into(), "127.0.0.1:22".into()]),
            local_runner(),
        );
        let job = Job {
            seed: 7,
            ..Job::sim(40.0, 750e6, 5e6)
        };
        let truth = ok_report(&job).0;
        let mut lie = truth.clone();
        lie.sndr_db += 3.0;
        let (report, origin) = dispatcher.arbitrate_pair(
            &job,
            (Arc::clone(&dispatcher.backends[0]), lie),
            (Arc::clone(&dispatcher.backends[1]), truth.clone()),
        );
        assert_eq!(report.to_text(), truth.to_text(), "the honest bytes win");
        assert!(
            Arc::ptr_eq(&origin, &dispatcher.backends[1]),
            "the winning answer is attributed to the honest backend"
        );
        assert!(
            dispatcher.backends[0].quarantined(),
            "the liar is integrity-quarantined"
        );
        assert!(
            !dispatcher.backends[1].quarantined(),
            "the honest peer keeps its standing"
        );
        assert_eq!(
            dispatcher.drain_verified(),
            vec![job.key()],
            "arbitration doubles as verification of the key"
        );
    }

    #[test]
    fn hedging_takes_the_first_answer() {
        let (addr_a, handle_a) = spawn_backend();
        let (addr_b, handle_b) = spawn_backend();
        let config = DispatchConfig {
            hedge_ms: 1, // hedge almost immediately
            ..fast_config(vec![addr_a.to_string(), addr_b.to_string()])
        };
        let dispatcher = Dispatcher::new(&config, local_runner());
        for seed in 0..4u64 {
            let job = Job {
                seed,
                ..Job::sim(40.0, 750e6, 5e6)
            };
            let (report, _) = dispatcher.run_job(&job).expect("hedged job");
            assert_eq!(report.key, job.key());
        }
        stop_backend(addr_a, handle_a);
        stop_backend(addr_b, handle_b);
    }
}
