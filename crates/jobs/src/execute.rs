//! The default job runner: turns a [`Job`] into a [`JobReport`] by
//! driving the core simulator or the full design flow.
//!
//! Runners are deliberately plain functions `&Job → Result<(report,
//! stage times)>` so the pool can be tested with injected runners
//! (panicking, flaky, slow) without touching the real flow.

use crate::error::JobError;
use crate::job::{Job, JobKind};
use crate::metrics::StageTimes;
use crate::report::JobReport;
use std::time::Instant;
use tdsigma_core::flow::DesignFlow;
use tdsigma_core::sim::AdcSimulator;
use tdsigma_dsp::metrics::enob_from_sndr;
use tdsigma_dsp::spectrum::SpectrumScratch;
use tdsigma_obs as obs;

std::thread_local! {
    /// Per-thread DSP scratch: a pool worker analyzes every sim job it
    /// runs with reused window/twiddle/windowed buffers (bit-identical to
    /// the allocating path — see `SpectrumScratch`).
    static DSP_SCRATCH: std::cell::RefCell<SpectrumScratch> =
        std::cell::RefCell::new(SpectrumScratch::new());
}

/// Executes one job to completion on the calling thread.
///
/// Deterministic: the result depends only on the job parameters (every
/// stochastic input is drawn from the job's seed), never on scheduling.
///
/// # Errors
///
/// [`JobError::Invalid`] for unsupported parameters, [`JobError::Failed`]
/// for flow errors.
pub fn execute(job: &Job) -> Result<(JobReport, StageTimes), JobError> {
    match job.kind {
        JobKind::SimTone => execute_sim(job),
        JobKind::FullFlow => execute_flow(job),
    }
}

fn execute_sim(job: &Job) -> Result<(JobReport, StageTimes), JobError> {
    let mut stages = StageTimes::default();
    let t = Instant::now();
    let (spec, mut sim) = {
        let _span = obs::span("flow.build").attr("kind", "sim");
        let spec = job.to_spec()?;
        let sim = AdcSimulator::new(spec.clone()).map_err(failed)?;
        (spec, sim)
    };
    stages.build_ms = ms_since(t);

    let t = Instant::now();
    let fin = job.input_frequency_hz();
    let amplitude = job.amplitude_rel * spec.full_scale_v();
    let capture = sim.run_tone(fin, amplitude, job.samples);
    stages.execute_ms = ms_since(t);

    let t = Instant::now();
    let analysis = DSP_SCRATCH.with(|s| capture.analyze_with(spec.bw_hz, &mut s.borrow_mut()));
    let report = JobReport {
        key: job.key(),
        job: job.clone(),
        fin_hz: fin,
        sndr_db: analysis.sndr_db,
        enob: enob_from_sndr(analysis.sndr_db),
        power_mw: None,
        digital_fraction: None,
        area_mm2: None,
        fom_fj: None,
        timing_slack_ps: None,
    };
    stages.analyze_ms = ms_since(t);
    Ok((report, stages))
}

fn execute_flow(job: &Job) -> Result<(JobReport, StageTimes), JobError> {
    let mut stages = StageTimes::default();
    let t = Instant::now();
    let (flow, fin) = {
        let _span = obs::span("flow.build").attr("kind", "flow");
        let spec = job.to_spec()?;
        let mut flow = DesignFlow::new(spec)
            .with_samples(job.samples)
            .with_amplitude(job.amplitude_rel);
        if let Some(fin) = job.fin_hz {
            flow = flow.with_input_frequency(fin);
        }
        let fin = flow.input_frequency_hz();
        (flow, fin)
    };
    stages.build_ms = ms_since(t);

    let t = Instant::now();
    let outcome = flow.run().map_err(failed)?;
    stages.execute_ms = ms_since(t);

    let t = Instant::now();
    let r = &outcome.report;
    let report = JobReport {
        key: job.key(),
        job: job.clone(),
        fin_hz: fin,
        sndr_db: r.sndr_db,
        enob: r.enob,
        power_mw: Some(r.power_mw),
        digital_fraction: Some(r.digital_fraction),
        area_mm2: Some(r.area_mm2),
        fom_fj: Some(r.fom_fj),
        timing_slack_ps: Some(outcome.timing.slack_ps()),
    };
    stages.analyze_ms = ms_since(t);
    Ok((report, stages))
}

fn failed(e: impl std::fmt::Display) -> JobError {
    JobError::Failed {
        attempts: 1,
        message: e.to_string(),
    }
}

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sim_job() -> Job {
        let mut job = Job::sim(40.0, 750e6, 5e6);
        job.slices = 2;
        // 2048 cycles keeps the test fast while leaving enough in-band
        // FFT bins for the SNDR analysis (bw·N/fs ≈ 13 bins).
        job.samples = 2048;
        job.steps_per_cycle = 4;
        job
    }

    #[test]
    fn sim_job_executes_deterministically() {
        let job = quick_sim_job();
        let (a, _) = execute(&job).unwrap();
        let (b, _) = execute(&job).unwrap();
        assert_eq!(a.to_text(), b.to_text(), "same job, same bits");
        assert!(a.sndr_db.is_finite());
        assert_eq!(a.power_mw, None);
        assert_eq!(a.key, job.key());
    }

    #[test]
    fn different_seed_different_result() {
        let job = quick_sim_job();
        let mut other = job.clone();
        other.seed = 31_337;
        let (a, _) = execute(&job).unwrap();
        let (b, _) = execute(&other).unwrap();
        assert_ne!(
            a.sndr_db, b.sndr_db,
            "a different die must measure differently"
        );
    }

    #[test]
    fn invalid_job_reports_invalid() {
        let mut job = quick_sim_job();
        job.slices = 0;
        match execute(&job) {
            Err(JobError::Invalid(_)) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn stage_times_are_recorded() {
        let (_, stages) = execute(&quick_sim_job()).unwrap();
        assert!(stages.execute_ms > 0.0);
        assert!(stages.total_ms() >= stages.execute_ms);
    }
}
