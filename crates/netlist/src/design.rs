//! Designs (module collections) and hierarchy flattening.

use crate::error::NetlistError;
use crate::module::{InstanceKind, Module, NetId};
use std::collections::BTreeMap;
use std::fmt;

/// A complete design: a set of modules with a designated top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    modules: BTreeMap<String, Module>,
    top: String,
}

impl Design {
    /// Creates a design whose only module is also the top.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`Design::with_modules`].
    pub fn new(top: Module) -> Result<Self, NetlistError> {
        let name = top.name().to_string();
        Design::with_modules(vec![top], &name)
    }

    /// Creates a design from several modules.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateName`] for duplicate module names.
    /// * [`NetlistError::MissingModule`] if the top or any instantiated
    ///   module is absent.
    /// * [`NetlistError::UnknownPin`] if a hierarchical connection names a
    ///   port the submodule lacks.
    pub fn with_modules(
        modules: impl IntoIterator<Item = Module>,
        top: &str,
    ) -> Result<Self, NetlistError> {
        let mut map = BTreeMap::new();
        for m in modules {
            let name = m.name().to_string();
            if map.insert(name.clone(), m).is_some() {
                return Err(NetlistError::DuplicateName { name });
            }
        }
        if !map.contains_key(top) {
            return Err(NetlistError::MissingModule {
                module: top.to_string(),
            });
        }
        let design = Design {
            modules: map,
            top: top.to_string(),
        };
        design.validate_hierarchy()?;
        Ok(design)
    }

    fn validate_hierarchy(&self) -> Result<(), NetlistError> {
        for module in self.modules.values() {
            for inst in module.instances() {
                if let InstanceKind::Hierarchical { module: sub } = &inst.kind {
                    let Some(submodule) = self.modules.get(sub) else {
                        return Err(NetlistError::MissingModule {
                            module: sub.clone(),
                        });
                    };
                    for pin in inst.connections.keys() {
                        if submodule.port(pin).is_none() {
                            return Err(NetlistError::UnknownPin {
                                cell: sub.clone(),
                                pin: pin.clone(),
                            });
                        }
                    }
                    for port in submodule.ports() {
                        if !inst.connections.contains_key(&port.name) {
                            return Err(NetlistError::UnconnectedPin {
                                instance: format!("{}/{}", module.name(), inst.name),
                                pin: port.name.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The top module.
    pub fn top(&self) -> &Module {
        &self.modules[&self.top]
    }

    /// Name of the top module.
    pub fn top_name(&self) -> &str {
        &self.top
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.get(name)
    }

    /// All modules in name order.
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.modules.values()
    }

    /// Modules in dependency order (leaves first, top last) — the order a
    /// Verilog writer needs.
    pub fn modules_bottom_up(&self) -> Vec<&Module> {
        let mut order: Vec<&Module> = Vec::new();
        let mut visited: Vec<String> = Vec::new();
        fn visit<'d>(
            design: &'d Design,
            name: &str,
            visited: &mut Vec<String>,
            order: &mut Vec<&'d Module>,
        ) {
            if visited.iter().any(|v| v == name) {
                return;
            }
            visited.push(name.to_string());
            let module = &design.modules[name];
            for inst in module.instances() {
                if let InstanceKind::Hierarchical { module: sub } = &inst.kind {
                    visit(design, sub, visited, order);
                }
            }
            order.push(module);
        }
        visit(self, &self.top, &mut visited, &mut order);
        order
    }

    /// Flattens the hierarchy into leaf cells with hierarchical path names
    /// (`slice0/I6`) and globally resolved net names.
    pub fn flatten(&self) -> FlatNetlist {
        let mut flat = FlatNetlist {
            top: self.top.clone(),
            cells: Vec::new(),
            nets: Vec::new(),
        };
        let top = self.top();
        // Top-level nets keep their names.
        let top_net_map: BTreeMap<NetId, String> = (0..top.net_count())
            .map(|i| (NetId(i), top.net_names()[i].clone()))
            .collect();
        self.flatten_into(top, "", &top_net_map, &mut flat);
        let mut seen = std::collections::BTreeSet::new();
        for cell in &flat.cells {
            for net in cell.connections.values() {
                if seen.insert(net.clone()) {
                    flat.nets.push(net.clone());
                }
            }
        }
        flat
    }

    fn flatten_into(
        &self,
        module: &Module,
        prefix: &str,
        net_map: &BTreeMap<NetId, String>,
        out: &mut FlatNetlist,
    ) {
        for inst in module.instances() {
            let path = if prefix.is_empty() {
                inst.name.clone()
            } else {
                format!("{prefix}/{}", inst.name)
            };
            match &inst.kind {
                InstanceKind::Leaf { cell } => {
                    let connections = inst
                        .connections
                        .iter()
                        .map(|(pin, net)| (pin.clone(), net_map[net].clone()))
                        .collect();
                    out.cells.push(FlatCell {
                        path,
                        cell: cell.clone(),
                        connections,
                    });
                }
                InstanceKind::Hierarchical { module: sub_name } => {
                    let sub = &self.modules[sub_name];
                    // Build the submodule's net map: port nets bind to the
                    // parent's nets; internal nets get path-prefixed names.
                    let mut sub_map: BTreeMap<NetId, String> = BTreeMap::new();
                    for port in sub.ports() {
                        let parent_net = inst.connections[&port.name];
                        sub_map.insert(port.net, net_map[&parent_net].clone());
                    }
                    for i in 0..sub.net_count() {
                        let id = NetId(i);
                        sub_map
                            .entry(id)
                            .or_insert_with(|| format!("{path}/{}", sub.net_names()[i]));
                    }
                    self.flatten_into(sub, &path, &sub_map, out);
                }
            }
        }
    }
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "design top={} ({} modules)",
            self.top,
            self.modules.len()
        )
    }
}

/// A flattened leaf cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatCell {
    /// Hierarchical instance path, e.g. `"slice0/I6"`.
    pub path: String,
    /// Library cell name.
    pub cell: String,
    /// Pin → flat net name.
    pub connections: BTreeMap<String, String>,
}

/// The result of flattening a [`Design`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatNetlist {
    /// Name of the top module this was flattened from.
    pub top: String,
    /// All leaf cells.
    pub cells: Vec<FlatCell>,
    /// All net names observed, in first-use order.
    pub nets: Vec<String>,
}

impl FlatNetlist {
    /// Cells using the given library cell name.
    pub fn cells_of<'a>(&'a self, cell: &'a str) -> impl Iterator<Item = &'a FlatCell> {
        self.cells.iter().filter(move |c| c.cell == cell)
    }

    /// Total number of leaf cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the netlist has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cells connected to the given flat net.
    pub fn cells_on_net<'a>(&'a self, net: &'a str) -> impl Iterator<Item = &'a FlatCell> {
        self.cells
            .iter()
            .filter(move |c| c.connections.values().any(|n| n == net))
    }
}

impl fmt::Display for FlatNetlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flat {} ({} cells, {} nets)",
            self.top,
            self.cells.len(),
            self.nets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::PortDirection;

    /// A two-level design: `top` instantiates `pair` twice; `pair` holds
    /// two inverters in series.
    fn two_level_design() -> Design {
        let mut pair = Module::new("pair");
        let a = pair.add_port("A", PortDirection::Input);
        let y = pair.add_port("Y", PortDirection::Output);
        let vdd = pair.add_port("VDD", PortDirection::Inout);
        let vss = pair.add_port("VSS", PortDirection::Inout);
        let mid = pair.add_net("mid");
        pair.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", mid), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        pair.add_leaf(
            "I1",
            "INVX1",
            [("A", mid), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();

        let mut top = Module::new("top");
        let tin = top.add_port("IN", PortDirection::Input);
        let tout = top.add_port("OUT", PortDirection::Output);
        let vdd = top.add_port("VDD", PortDirection::Inout);
        let vss = top.add_port("VSS", PortDirection::Inout);
        let x = top.add_net("x");
        top.add_submodule(
            "P0",
            "pair",
            [("A", tin), ("Y", x), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        top.add_submodule(
            "P1",
            "pair",
            [("A", x), ("Y", tout), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        Design::with_modules([pair, top], "top").unwrap()
    }

    #[test]
    fn missing_top_rejected() {
        let m = Module::new("a");
        let err = Design::with_modules([m], "b").unwrap_err();
        assert!(matches!(err, NetlistError::MissingModule { .. }));
    }

    #[test]
    fn missing_submodule_rejected() {
        let mut top = Module::new("top");
        let c = top.add_port("C", PortDirection::Input);
        top.add_submodule("S", "ghost", [("C", c)]).unwrap();
        let err = Design::new(top).unwrap_err();
        assert!(matches!(err, NetlistError::MissingModule { .. }));
    }

    #[test]
    fn bad_submodule_port_rejected() {
        let sub = Module::new("sub");
        let mut top = Module::new("top");
        let c = top.add_port("C", PortDirection::Input);
        top.add_submodule("S", "sub", [("NOPE", c)]).unwrap();
        let err = Design::with_modules([sub, top], "top").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownPin { .. }));
    }

    #[test]
    fn unbound_submodule_port_rejected() {
        let mut sub = Module::new("sub");
        sub.add_port("A", PortDirection::Input);
        let mut top = Module::new("top");
        top.add_submodule("S", "sub", []).unwrap();
        let err = Design::with_modules([sub, top], "top").unwrap_err();
        assert!(matches!(err, NetlistError::UnconnectedPin { .. }));
    }

    #[test]
    fn bottom_up_order_puts_top_last() {
        let d = two_level_design();
        let order: Vec<&str> = d.modules_bottom_up().iter().map(|m| m.name()).collect();
        assert_eq!(order, vec!["pair", "top"]);
    }

    #[test]
    fn flatten_produces_all_leaves() {
        let d = two_level_design();
        let flat = d.flatten();
        assert_eq!(flat.len(), 4);
        let paths: Vec<&str> = flat.cells.iter().map(|c| c.path.as_str()).collect();
        assert_eq!(paths, vec!["P0/I0", "P0/I1", "P1/I0", "P1/I1"]);
        assert!(!flat.is_empty());
    }

    #[test]
    fn flatten_resolves_nets_across_hierarchy() {
        let d = two_level_design();
        let flat = d.flatten();
        // P0's output Y is bonded to top net "x"; P1's input A too.
        let p0_i1 = flat.cells.iter().find(|c| c.path == "P0/I1").unwrap();
        let p1_i0 = flat.cells.iter().find(|c| c.path == "P1/I0").unwrap();
        assert_eq!(p0_i1.connections["Y"], "x");
        assert_eq!(p1_i0.connections["A"], "x");
        // Internal nets are path-prefixed.
        let p0_i0 = flat.cells.iter().find(|c| c.path == "P0/I0").unwrap();
        assert_eq!(p0_i0.connections["Y"], "P0/mid");
        // Global supplies stay global.
        assert_eq!(p0_i0.connections["VDD"], "VDD");
        assert_eq!(p1_i0.connections["VDD"], "VDD");
    }

    #[test]
    fn cells_on_net_and_of_cell() {
        let d = two_level_design();
        let flat = d.flatten();
        assert_eq!(flat.cells_of("INVX1").count(), 4);
        assert_eq!(flat.cells_on_net("x").count(), 2);
        assert_eq!(flat.cells_on_net("VDD").count(), 4);
    }

    #[test]
    fn display_formats() {
        let d = two_level_design();
        assert!(d.to_string().contains("top=top"));
        assert!(d.flatten().to_string().contains("4 cells"));
    }
}
