//! Structural lint for flattened netlists.
//!
//! The checks a gate-level netlist must pass before layout synthesis:
//! every logic input driven, no contending drivers, no dangling outputs.
//! Power/supply nets and passive (resistor) terminals are exempt from the
//! driver rules — they are analog nodes by design in this circuit.

use crate::cellpins::{LeafPins, PinRole};
use crate::design::FlatNetlist;
use crate::error::NetlistError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LintViolation {
    /// A logic input pin's net has no driver at all.
    FloatingInput {
        /// Cell path.
        cell: String,
        /// Pin name.
        pin: String,
        /// Net name.
        net: String,
    },
    /// Two or more output pins drive the same net.
    MultipleDrivers {
        /// Net name.
        net: String,
        /// Paths of the contending drivers.
        drivers: Vec<String>,
    },
    /// Two or more outputs drive the same net *within one leaf block* —
    /// the cross-coupled inverter topology of the paper's VCO cell
    /// (Fig. 5). Intentional analog contention; reported as a warning.
    CrossCoupledDrivers {
        /// Net name.
        net: String,
        /// Paths of the cross-coupled drivers.
        drivers: Vec<String>,
    },
    /// An output pin drives a net nobody reads.
    DanglingOutput {
        /// Cell path.
        cell: String,
        /// Net name.
        net: String,
    },
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintViolation::FloatingInput { cell, pin, net } => {
                write!(f, "floating input {cell}.{pin} on net {net}")
            }
            LintViolation::MultipleDrivers { net, drivers } => {
                write!(
                    f,
                    "net {net} has {} drivers: {}",
                    drivers.len(),
                    drivers.join(", ")
                )
            }
            LintViolation::CrossCoupledDrivers { net, drivers } => {
                write!(
                    f,
                    "net {net} is cross-coupled (intentional analog contention): {}",
                    drivers.join(", ")
                )
            }
            LintViolation::DanglingOutput { cell, net } => {
                write!(f, "dangling output of {cell} on net {net}")
            }
        }
    }
}

/// The result of linting a netlist.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// All violations found, in deterministic order.
    pub violations: Vec<LintViolation>,
}

impl LintReport {
    /// True if the netlist is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True if any *error-class* violation exists. Dangling outputs are
    /// warnings (unused complementary outputs are routine in gate-level
    /// netlists); floating inputs and driver contention are errors.
    pub fn has_errors(&self) -> bool {
        self.violations.iter().any(|v| {
            !matches!(
                v,
                LintViolation::DanglingOutput { .. } | LintViolation::CrossCoupledDrivers { .. }
            )
        })
    }

    /// The warning-class findings (dangling / cross-coupled) only.
    pub fn warnings(&self) -> Vec<&LintViolation> {
        self.violations
            .iter()
            .filter(|v| {
                matches!(
                    v,
                    LintViolation::DanglingOutput { .. }
                        | LintViolation::CrossCoupledDrivers { .. }
                )
            })
            .collect()
    }

    /// Converts the report into a `Result`, erroring when violations exist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LintFailed`] carrying the violation count.
    pub fn into_result(self) -> Result<(), NetlistError> {
        if self.is_clean() {
            Ok(())
        } else {
            Err(NetlistError::LintFailed {
                violations: self.violations.len(),
            })
        }
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "lint clean")
        } else {
            writeln!(f, "lint: {} violations", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Lints a flattened netlist. `external_nets` are nets legitimately driven
/// or observed from outside (the top module's ports: inputs count as
/// drivers, outputs as readers).
///
/// # Errors
///
/// Returns [`NetlistError::UnknownCell`] if a cell's pin set cannot be
/// resolved.
pub fn lint_flat(
    flat: &FlatNetlist,
    external_nets: &BTreeSet<String>,
) -> Result<LintReport, NetlistError> {
    let mut drivers: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<(String, String)>> = BTreeMap::new();
    let mut passive_nets: BTreeSet<&str> = BTreeSet::new();

    for cell in &flat.cells {
        let pins = LeafPins::for_cell(&cell.cell)?;
        for (pin, net) in &cell.connections {
            match pins.role(pin) {
                Some(PinRole::Output) => drivers
                    .entry(net.as_str())
                    .or_default()
                    .push(cell.path.clone()),
                Some(PinRole::Input) => readers
                    .entry(net.as_str())
                    .or_default()
                    .push((cell.path.clone(), pin.clone())),
                Some(PinRole::Passive) => {
                    passive_nets.insert(net.as_str());
                }
                Some(PinRole::Power | PinRole::Ground) => {
                    passive_nets.insert(net.as_str());
                }
                None => {
                    return Err(NetlistError::UnknownPin {
                        cell: cell.cell.clone(),
                        pin: pin.clone(),
                    })
                }
            }
        }
    }

    let mut report = LintReport::default();
    // Floating inputs: an input net with no driver, no passive connection
    // (a resistor can legitimately define a node) and not external.
    for (net, sinks) in &readers {
        let driven =
            drivers.contains_key(net) || passive_nets.contains(net) || external_nets.contains(*net);
        if !driven {
            for (cell, pin) in sinks {
                report.violations.push(LintViolation::FloatingInput {
                    cell: cell.clone(),
                    pin: pin.clone(),
                    net: (*net).to_string(),
                });
            }
        }
    }
    // Multiple drivers. Contention confined to one hierarchical block is
    // the cross-coupled (latching / ring) topology — a warning; contention
    // across blocks is an error.
    for (net, d) in &drivers {
        if d.len() > 1 {
            // A top-level leaf is its own block; a hierarchical leaf's
            // block is its parent instance.
            let parent = |path: &str| -> String {
                path.rsplit_once('/')
                    .map(|(p, _)| p.to_string())
                    .unwrap_or_else(|| path.to_string())
            };
            let first_parent = parent(&d[0]);
            let same_block = d.iter().all(|p| parent(p) == first_parent);
            if same_block {
                report.violations.push(LintViolation::CrossCoupledDrivers {
                    net: (*net).to_string(),
                    drivers: d.clone(),
                });
            } else {
                report.violations.push(LintViolation::MultipleDrivers {
                    net: (*net).to_string(),
                    drivers: d.clone(),
                });
            }
        }
    }
    // Dangling outputs.
    for (net, d) in &drivers {
        let read =
            readers.contains_key(net) || passive_nets.contains(net) || external_nets.contains(*net);
        if !read {
            for cell in d {
                report.violations.push(LintViolation::DanglingOutput {
                    cell: cell.clone(),
                    net: (*net).to_string(),
                });
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::module::{Module, PortDirection};

    fn externals(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn inverter_chain() -> FlatNetlist {
        let mut m = Module::new("chain");
        let a = m.add_port("IN", PortDirection::Input);
        let y = m.add_port("OUT", PortDirection::Output);
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let mid = m.add_net("mid");
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", mid), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf(
            "I1",
            "INVX1",
            [("A", mid), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        Design::new(m).unwrap().flatten()
    }

    #[test]
    fn clean_chain_passes() {
        let flat = inverter_chain();
        let report = lint_flat(&flat, &externals(&["IN", "OUT", "VDD", "VSS"])).unwrap();
        assert!(report.is_clean(), "{report}");
        report.into_result().unwrap();
    }

    #[test]
    fn floating_input_detected() {
        let flat = inverter_chain();
        // Without IN declared external, I0.A floats.
        let report = lint_flat(&flat, &externals(&["OUT", "VDD", "VSS"])).unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            &report.violations[0],
            LintViolation::FloatingInput { cell, .. } if cell == "I0"
        ));
        assert!(report.into_result().is_err());
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut m = Module::new("contention");
        let a = m.add_port("A", PortDirection::Input);
        let y = m.add_port("Y", PortDirection::Output);
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf(
            "I1",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let flat = Design::new(m).unwrap().flatten();
        let report = lint_flat(&flat, &externals(&["A", "Y", "VDD", "VSS"])).unwrap();
        assert!(matches!(
            &report.violations[0],
            LintViolation::MultipleDrivers { drivers, .. } if drivers.len() == 2
        ));
    }

    #[test]
    fn dangling_output_detected() {
        let mut m = Module::new("dangle");
        let a = m.add_port("A", PortDirection::Input);
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let dead = m.add_net("dead");
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", dead), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let flat = Design::new(m).unwrap().flatten();
        let report = lint_flat(&flat, &externals(&["A", "VDD", "VSS"])).unwrap();
        assert!(matches!(
            &report.violations[0],
            LintViolation::DanglingOutput { net, .. } if net == "dead"
        ));
    }

    #[test]
    fn resistor_defined_node_is_not_floating() {
        // An input fed only through a resistor (the ADC's V_CTRL pattern)
        // must not be flagged: the resistor defines the node.
        let mut m = Module::new("rc");
        let vin = m.add_port("VIN", PortDirection::Input);
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let node = m.add_net("node");
        let y = m.add_port("Y", PortDirection::Output);
        m.add_leaf("R0", "RESHI", [("T1", vin), ("T2", node)])
            .unwrap();
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", node), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let flat = Design::new(m).unwrap().flatten();
        let report = lint_flat(&flat, &externals(&["VIN", "Y", "VDD", "VSS"])).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn report_display_lists_violations() {
        let flat = inverter_chain();
        let report = lint_flat(&flat, &externals(&[])).unwrap();
        let text = report.to_string();
        assert!(text.contains("violations"));
        assert!(text.contains("floating input") || text.contains("dangling"));
    }
}
