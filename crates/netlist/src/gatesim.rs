//! Event-driven gate-level logic simulation.
//!
//! A small 4-value (0/1/X/Z) simulator for the digital portion of the
//! netlists this crate builds. It exists to *verify the generated
//! structure independently of the behavioral ADC model*: the Table-1
//! comparator must behave as a clocked SR sampler, the retiming latch pair
//! must delay by half a cycle, the DAC inverters must complement — all as
//! gates, not as equations.
//!
//! Supply pins are driven implicitly (`VDD*`/`VREF*` high, `VSS`/`GND`
//! low); resistor fragments conduct as ideal unidirectional bridges for
//! logic purposes (T1 ↔ T2), which is enough to propagate DAC levels.

use crate::cellpins::{LeafPins, PinRole};
use crate::design::FlatNetlist;
use crate::error::NetlistError;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// A 4-state logic value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Logic {
    /// Logic low.
    Zero,
    /// Logic high.
    One,
    /// Unknown (uninitialised or conflicting).
    #[default]
    X,
    /// Undriven.
    Z,
}

impl Logic {
    fn from_bool(b: bool) -> Logic {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Boolean view; `None` for X/Z.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
            Logic::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

fn nor(inputs: &[Logic]) -> Logic {
    if inputs.contains(&Logic::One) {
        return Logic::Zero;
    }
    if inputs.iter().all(|&v| v == Logic::Zero) {
        return Logic::One;
    }
    Logic::X
}

fn nand(inputs: &[Logic]) -> Logic {
    if inputs.contains(&Logic::Zero) {
        return Logic::One;
    }
    if inputs.iter().all(|&v| v == Logic::One) {
        return Logic::Zero;
    }
    Logic::X
}

fn xor2(a: Logic, b: Logic) -> Logic {
    match (a.to_bool(), b.to_bool()) {
        (Some(x), Some(y)) => Logic::from_bool(x ^ y),
        _ => Logic::X,
    }
}

/// An event-driven gate-level simulator over a flattened netlist.
///
/// ```
/// use tdsigma_netlist::{Design, GateSimulator, Logic, Module, PortDirection};
///
/// # fn main() -> Result<(), tdsigma_netlist::NetlistError> {
/// let mut m = Module::new("inv");
/// let vdd = m.add_port("VDD", PortDirection::Inout);
/// let vss = m.add_port("VSS", PortDirection::Inout);
/// let a = m.add_port("A", PortDirection::Input);
/// let y = m.add_port("Y", PortDirection::Output);
/// m.add_leaf("I0", "INVX1", [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)])?;
/// let mut sim = GateSimulator::new(&Design::new(m)?.flatten())?;
/// sim.drive("A", true);
/// assert_eq!(sim.value("Y"), Logic::Zero);
/// # Ok(())
/// # }
/// ```
pub struct GateSimulator {
    /// Net name → value.
    values: BTreeMap<String, Logic>,
    /// Cell index → (cell name, pins, connections).
    cells: Vec<(String, LeafPins, BTreeMap<String, String>)>,
    /// Net name → cell indices reading it.
    fanout: BTreeMap<String, Vec<usize>>,
    /// Per-latch internal state (by cell index).
    latch_state: BTreeMap<usize, Logic>,
    /// Evaluation steps taken in the last settle (loop-guarded).
    last_settle_steps: usize,
}

impl GateSimulator {
    /// Builds a simulator for `flat`. Supply-ish nets are pre-driven:
    /// any net whose last path segment starts with `VDD`/`VREFP`/`VCTRL`/
    /// `VBUF` is high; `VSS`/`GND`/`VREFN` are low.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for unsupported cells.
    pub fn new(flat: &FlatNetlist) -> Result<Self, NetlistError> {
        let mut cells = Vec::with_capacity(flat.cells.len());
        let mut fanout: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut values: BTreeMap<String, Logic> = BTreeMap::new();
        for (idx, cell) in flat.cells.iter().enumerate() {
            let pins = LeafPins::for_cell(&cell.cell)?;
            for (pin, net) in &cell.connections {
                values.entry(net.clone()).or_default();
                let reads = matches!(
                    pins.role(pin),
                    Some(PinRole::Input) | Some(PinRole::Passive)
                );
                if reads {
                    fanout.entry(net.clone()).or_default().push(idx);
                }
            }
            cells.push((cell.cell.clone(), pins, cell.connections.clone()));
        }
        let mut sim = GateSimulator {
            values,
            cells,
            fanout,
            latch_state: BTreeMap::new(),
            last_settle_steps: 0,
        };
        // Pre-drive supplies.
        let keys: Vec<String> = sim.values.keys().cloned().collect();
        for net in keys {
            let base = net.rsplit('/').next().unwrap_or(&net);
            if base.starts_with("VDD")
                || base.starts_with("VREFP")
                || base.starts_with("VCTRL")
                || base.starts_with("VBUF")
            {
                sim.values.insert(net, Logic::One);
            } else if base.starts_with("VSS")
                || base.starts_with("GND")
                || base.starts_with("VREFN")
            {
                sim.values.insert(net, Logic::Zero);
            }
        }
        Ok(sim)
    }

    /// Drives a net to a value and propagates to a fixed point.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn drive(&mut self, net: &str, value: bool) {
        assert!(self.values.contains_key(net), "unknown net {net}");
        self.set_and_settle(net.to_string(), Logic::from_bool(value));
    }

    /// Current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist.
    pub fn value(&self, net: &str) -> Logic {
        *self
            .values
            .get(net)
            .unwrap_or_else(|| panic!("unknown net {net}"))
    }

    /// Number of gate evaluations in the last settle (diagnostics).
    pub fn last_settle_steps(&self) -> usize {
        self.last_settle_steps
    }

    fn set_and_settle(&mut self, net: String, value: Logic) {
        if self.values.get(&net) == Some(&value) {
            return;
        }
        self.values.insert(net.clone(), value);
        let mut queue: VecDeque<usize> = self
            .fanout
            .get(&net)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let mut steps = 0usize;
        // Loop guard: cross-coupled structures converge or oscillate; the
        // bound is generous (each gate may re-evaluate many times).
        let max_steps = self.cells.len() * 64 + 1024;
        while let Some(idx) = queue.pop_front() {
            steps += 1;
            if steps > max_steps {
                // Oscillation (e.g. an enabled ring oscillator): mark the
                // remaining queue's outputs X and stop.
                break;
            }
            for (out_net, new_val) in self.evaluate(idx) {
                if self.values.get(&out_net) != Some(&new_val) {
                    self.values.insert(out_net.clone(), new_val);
                    if let Some(f) = self.fanout.get(&out_net) {
                        queue.extend(f.iter().copied());
                    }
                }
            }
        }
        self.last_settle_steps = steps;
    }

    /// Evaluates one cell, returning its (output net, value) updates.
    fn evaluate(&mut self, idx: usize) -> Vec<(String, Logic)> {
        let (cell_name, _pins, conns) = &self.cells[idx];
        let read = |pin: &str| -> Logic {
            conns
                .get(pin)
                .and_then(|n| self.values.get(n))
                .copied()
                .unwrap_or(Logic::X)
        };
        let out_net = |pin: &str| conns.get(pin).cloned();
        let cell_name = cell_name.as_str();
        let mut updates = Vec::new();
        if cell_name.starts_with("INV") {
            if let Some(y) = out_net("Y") {
                updates.push((y, read("A").not()));
            }
        } else if cell_name.starts_with("BUF") {
            if let Some(y) = out_net("Y") {
                let a = read("A");
                updates.push((y, a.not().not()));
            }
        } else if cell_name.starts_with("NOR2") {
            if let Some(y) = out_net("Y") {
                updates.push((y, nor(&[read("A"), read("B")])));
            }
        } else if cell_name.starts_with("NOR3") {
            if let Some(y) = out_net("Y") {
                updates.push((y, nor(&[read("A"), read("B"), read("C")])));
            }
        } else if cell_name.starts_with("NAND2") {
            if let Some(y) = out_net("Y") {
                updates.push((y, nand(&[read("A"), read("B")])));
            }
        } else if cell_name.starts_with("NAND3") {
            if let Some(y) = out_net("Y") {
                updates.push((y, nand(&[read("A"), read("B"), read("C")])));
            }
        } else if cell_name.starts_with("XOR2") {
            if let Some(y) = out_net("Y") {
                updates.push((y, xor2(read("A"), read("B"))));
            }
        } else if cell_name.starts_with("LATCH") {
            let en = read("EN");
            let d = read("D");
            let state = self.latch_state.entry(idx).or_insert(Logic::X);
            if en == Logic::One {
                *state = d;
            }
            let q = *state;
            if let Some(qn) = conns.get("Q").cloned() {
                updates.push((qn, q));
            }
        } else if cell_name.starts_with("DFF") {
            // Level behaviour approximated as master-slave on CK.
            let ck = read("CK");
            let d = read("D");
            let state = self.latch_state.entry(idx).or_insert(Logic::X);
            if ck == Logic::One {
                *state = d;
            }
            if let Some(qn) = conns.get("Q").cloned() {
                updates.push((qn, *state));
            }
        } else if cell_name == "RESLO" || cell_name == "RESHI" {
            // Logic view of a resistor: a bridge. Propagate a defined value
            // to an undefined side (both directions).
            let t1 = read("T1");
            let t2 = read("T2");
            match (t1.to_bool(), t2.to_bool()) {
                (Some(_), None) => {
                    if let Some(n) = conns.get("T2").cloned() {
                        updates.push((n, t1));
                    }
                }
                (None, Some(_)) => {
                    if let Some(n) = conns.get("T1").cloned() {
                        updates.push((n, t2));
                    }
                }
                _ => {}
            }
        } else if cell_name.starts_with("TIE") {
            if let Some(y) = out_net("Y") {
                updates.push((y, Logic::One));
            }
        }
        updates
    }
}

impl fmt::Debug for GateSimulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GateSimulator")
            .field("cells", &self.cells.len())
            .field("nets", &self.values.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::module::{Module, PortDirection};

    fn sim_of(m: Module) -> GateSimulator {
        let flat = Design::new(m).unwrap().flatten();
        GateSimulator::new(&flat).unwrap()
    }

    #[test]
    fn inverter_chain_propagates() {
        let mut m = Module::new("chain");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_port("A", PortDirection::Input);
        let mid = m.add_net("mid");
        let y = m.add_port("Y", PortDirection::Output);
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", mid), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf(
            "I1",
            "INVX2",
            [("A", mid), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let mut sim = sim_of(m);
        sim.drive("A", true);
        assert_eq!(sim.value("mid"), Logic::Zero);
        assert_eq!(sim.value("Y"), Logic::One);
        sim.drive("A", false);
        assert_eq!(sim.value("Y"), Logic::Zero);
    }

    #[test]
    fn xor_truth_table() {
        let mut m = Module::new("x");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_port("A", PortDirection::Input);
        let b = m.add_port("B", PortDirection::Input);
        let y = m.add_port("Y", PortDirection::Output);
        m.add_leaf(
            "X0",
            "XOR2X1",
            [("A", a), ("B", b), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let mut sim = sim_of(m);
        for (a_v, b_v, y_v) in [
            (false, false, Logic::Zero),
            (true, false, Logic::One),
            (false, true, Logic::One),
            (true, true, Logic::Zero),
        ] {
            sim.drive("A", a_v);
            sim.drive("B", b_v);
            assert_eq!(sim.value("Y"), y_v, "{a_v} ^ {b_v}");
        }
    }

    #[test]
    fn sr_latch_from_nor2_holds_state() {
        // The comparator's output stage: cross-coupled NOR2.
        let mut m = Module::new("sr");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let s = m.add_port("S", PortDirection::Input);
        let r = m.add_port("R", PortDirection::Input);
        let q = m.add_port("Q", PortDirection::Output);
        let qb = m.add_port("QB", PortDirection::Output);
        m.add_leaf(
            "N0",
            "NOR2X1",
            [("A", r), ("B", qb), ("Y", q), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf(
            "N1",
            "NOR2X1",
            [("A", s), ("B", q), ("Y", qb), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let mut sim = sim_of(m);
        // Reset then release: Q = 0 held.
        sim.drive("S", false);
        sim.drive("R", true);
        sim.drive("R", false);
        assert_eq!(sim.value("Q"), Logic::Zero);
        assert_eq!(sim.value("QB"), Logic::One);
        // Set then release: Q = 1 held.
        sim.drive("S", true);
        sim.drive("S", false);
        assert_eq!(sim.value("Q"), Logic::One);
        assert_eq!(sim.value("QB"), Logic::Zero);
    }

    #[test]
    fn latch_is_transparent_then_holds() {
        let mut m = Module::new("l");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let d = m.add_port("D", PortDirection::Input);
        let en = m.add_port("EN", PortDirection::Input);
        let q = m.add_port("Q", PortDirection::Output);
        m.add_leaf(
            "L0",
            "LATCHX1",
            [("D", d), ("EN", en), ("Q", q), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let mut sim = sim_of(m);
        sim.drive("EN", true);
        sim.drive("D", true);
        assert_eq!(sim.value("Q"), Logic::One);
        sim.drive("EN", false);
        sim.drive("D", false);
        assert_eq!(sim.value("Q"), Logic::One, "must hold through EN low");
        sim.drive("EN", true);
        assert_eq!(sim.value("Q"), Logic::Zero, "transparent again");
    }

    #[test]
    fn resistor_bridges_logic_levels() {
        let mut m = Module::new("r");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_port("A", PortDirection::Input);
        let y = m.add_net("y");
        let out = m.add_net("out");
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf("R0", "RESHI", [("T1", y), ("T2", out)]).unwrap();
        let mut sim = sim_of(m);
        sim.drive("A", false);
        assert_eq!(sim.value("out"), Logic::One, "resistor carries the level");
    }

    #[test]
    fn undriven_nets_start_x() {
        let mut m = Module::new("u");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_port("A", PortDirection::Input);
        let y = m.add_port("Y", PortDirection::Output);
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let sim = sim_of(m);
        assert_eq!(sim.value("Y"), Logic::X);
        assert_eq!(sim.value("A"), Logic::X);
        assert_eq!(Logic::X.to_bool(), None);
        assert_eq!(format!("{}", Logic::X), "X");
    }

    #[test]
    fn supplies_are_predriven() {
        let mut m = Module::new("s");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_port("A", PortDirection::Input);
        let y = m.add_port("Y", PortDirection::Output);
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let sim = sim_of(m);
        assert_eq!(sim.value("VDD"), Logic::One);
        assert_eq!(sim.value("VSS"), Logic::Zero);
    }

    #[test]
    #[should_panic(expected = "unknown net")]
    fn unknown_net_panics() {
        let mut m = Module::new("u2");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_port("A", PortDirection::Input);
        let y = m.add_port("Y", PortDirection::Output);
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let mut sim = sim_of(m);
        sim.drive("NOPE", true);
    }
}
