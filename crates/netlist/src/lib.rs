//! # tdsigma-netlist — gate-level netlist core
//!
//! The structural representation of the synthesis-friendly ADC and the
//! "HDL generation" phase of the paper's flow (§3.2): hierarchical
//! gate-level netlists, their power-domain / component-group annotation
//! (§3.3), a Verilog writer producing exactly the style of the paper's
//! Tables 1 and 2, a reader for round-tripping, and structural lint.
//!
//! ```
//! use tdsigma_netlist::{Design, Module, PortDirection};
//!
//! # fn main() -> Result<(), tdsigma_netlist::NetlistError> {
//! let mut m = Module::new("comparator");
//! let vdd = m.add_port("VDD", PortDirection::Inout);
//! let vss = m.add_port("VSS", PortDirection::Inout);
//! let inp = m.add_port("INP", PortDirection::Input);
//! let clk = m.add_port("CLK", PortDirection::Input);
//! let q = m.add_port("Q", PortDirection::Output);
//! let outm = m.add_net("OUTM");
//! m.add_leaf("I0", "NOR3X4", [("A", outm), ("B", inp), ("C", clk),
//!     ("Y", q), ("VDD", vdd), ("VSS", vss)])?;
//! let design = Design::new(m)?;
//! let verilog = tdsigma_netlist::verilog::write_design(&design)?;
//! assert!(verilog.contains("NOR3X4 I0"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cellpins;
pub mod design;
pub mod error;
pub mod gatesim;
pub mod lint;
pub mod module;
pub mod power;
pub mod stats;
pub mod vcd;
pub mod verilog;

pub use cellpins::{LeafPins, PinRole};
pub use design::{Design, FlatCell, FlatNetlist};
pub use error::NetlistError;
pub use gatesim::{GateSimulator, Logic};
pub use module::{Instance, InstanceKind, Module, NetId, Port, PortDirection, PortId};
pub use power::{GroupKind, PowerPlan, Region};
pub use stats::DesignStats;
pub use vcd::VcdWriter;
