//! Power domains and component groups (paper §3.3).
//!
//! The proposed ADC is unusual for a "digital" netlist: different standard
//! cells connect their power pins to *different* nets — the VCO inverters
//! are supplied from the VCO control nodes (`VCTRLP`/`VCTRLN`), the buffers
//! from `VBUF`, the DAC inverters from `VREFP`, and the ordinary logic from
//! `VDD`. Conventional APR would short all P/G rails of a placement row, so
//! the circuit must first be partitioned into **power domains** (cells
//! sharing a supply) and **component groups** (supply-less cells, i.e. the
//! resistor fragments), which the floorplanner then maps to disjoint
//! regions (multi-supply-voltage flow).

use crate::cellpins::LeafPins;
use crate::design::FlatNetlist;
use crate::error::NetlistError;
use std::collections::BTreeMap;
use std::fmt;

/// The kind of a floorplan region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupKind {
    /// A power domain: all member cells share this supply net (the net
    /// their `VDD` pin connects to).
    PowerDomain {
        /// Name of the supply net.
        supply_net: String,
    },
    /// A component group: members need no supply (resistor fragments).
    ComponentGroup,
}

/// A named region of the floorplan: one power domain or component group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name, e.g. `"PD_VCTRLP"` or `"GROUP_RESLO"`.
    pub name: String,
    /// Domain or group.
    pub kind: GroupKind,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            GroupKind::PowerDomain { supply_net } => {
                write!(f, "{} (power domain on {supply_net})", self.name)
            }
            GroupKind::ComponentGroup => write!(f, "{} (component group)", self.name),
        }
    }
}

/// The partition of a flat netlist into power domains and component groups.
///
/// ```
/// use tdsigma_netlist::{Design, Module, PortDirection, PowerPlan};
///
/// # fn main() -> Result<(), tdsigma_netlist::NetlistError> {
/// let mut m = Module::new("mini");
/// let vdd = m.add_port("VDD", PortDirection::Inout);
/// let vctrl = m.add_port("VCTRLP", PortDirection::Inout);
/// let vss = m.add_port("VSS", PortDirection::Inout);
/// let a = m.add_net("a");
/// let b = m.add_net("b");
/// // A VCO inverter "powered" from the control node…
/// m.add_leaf("V0", "INVX1", [("A", a), ("Y", b), ("VDD", vctrl), ("VSS", vss)])?;
/// // …and ordinary logic on VDD must land in different domains.
/// m.add_leaf("L0", "INVX1", [("A", b), ("Y", a), ("VDD", vdd), ("VSS", vss)])?;
/// let flat = Design::new(m)?.flatten();
/// let plan = PowerPlan::infer(&flat)?;
/// assert_eq!(plan.domain_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerPlan {
    regions: Vec<Region>,
    /// Flat cell path → index into `regions`.
    assignment: BTreeMap<String, usize>,
}

impl PowerPlan {
    /// Infers the plan directly from connectivity: each cell with P/G pins
    /// joins the power domain of the net on its `VDD` pin; each supply-less
    /// cell (resistor fragment) joins a component group named after its
    /// library cell.
    ///
    /// This is exactly the paper's §3.3 recipe: *"The digital gates are
    /// assigned to different PDs according to their supply voltage, and the
    /// resistors are assigned to different groups according to the resistor
    /// types."*
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] if a cell name is unsupported
    /// and [`NetlistError::UnconnectedPin`] if a powered cell lacks a `VDD`
    /// connection.
    pub fn infer(flat: &FlatNetlist) -> Result<Self, NetlistError> {
        let mut plan = PowerPlan {
            regions: Vec::new(),
            assignment: BTreeMap::new(),
        };
        for cell in &flat.cells {
            let pins = LeafPins::for_cell(&cell.cell)?;
            let region_idx = if pins.has_power_pins() {
                let supply =
                    cell.connections
                        .get("VDD")
                        .ok_or_else(|| NetlistError::UnconnectedPin {
                            instance: cell.path.clone(),
                            pin: "VDD".to_string(),
                        })?;
                let name = format!("PD_{}", supply.replace('/', "_"));
                plan.region_index_or_insert(Region {
                    name,
                    kind: GroupKind::PowerDomain {
                        supply_net: supply.clone(),
                    },
                })
            } else {
                let name = format!("GROUP_{}", cell.cell);
                plan.region_index_or_insert(Region {
                    name,
                    kind: GroupKind::ComponentGroup,
                })
            };
            plan.assignment.insert(cell.path.clone(), region_idx);
        }
        Ok(plan)
    }

    fn region_index_or_insert(&mut self, region: Region) -> usize {
        if let Some(i) = self.regions.iter().position(|r| r.name == region.name) {
            return i;
        }
        self.regions.push(region);
        self.regions.len() - 1
    }

    /// All regions in creation order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The region a flat cell was assigned to.
    pub fn region_of(&self, path: &str) -> Option<&Region> {
        self.assignment.get(path).map(|&i| &self.regions[i])
    }

    /// Paths of all cells in the named region, in path order.
    pub fn cells_in(&self, region_name: &str) -> Vec<&str> {
        let Some(idx) = self.regions.iter().position(|r| r.name == region_name) else {
            return Vec::new();
        };
        self.assignment
            .iter()
            .filter(|(_, &i)| i == idx)
            .map(|(p, _)| p.as_str())
            .collect()
    }

    /// Number of power domains.
    pub fn domain_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| matches!(r.kind, GroupKind::PowerDomain { .. }))
            .count()
    }

    /// Number of component groups.
    pub fn group_count(&self) -> usize {
        self.regions.len() - self.domain_count()
    }

    /// Verifies that every cell of `flat` is assigned and that cells never
    /// share a domain with a different supply net — the invariant whose
    /// violation shorts P/G rails in a naive flow.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::LintFailed`] with the violation count.
    pub fn validate(&self, flat: &FlatNetlist) -> Result<(), NetlistError> {
        let mut violations = 0usize;
        for cell in &flat.cells {
            match self.region_of(&cell.path) {
                None => violations += 1,
                Some(region) => {
                    if let GroupKind::PowerDomain { supply_net } = &region.kind {
                        if cell.connections.get("VDD") != Some(supply_net) {
                            violations += 1;
                        }
                    }
                }
            }
        }
        if violations > 0 {
            Err(NetlistError::LintFailed { violations })
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for PowerPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "power plan: {} domains, {} groups, {} cells",
            self.domain_count(),
            self.group_count(),
            self.assignment.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::Design;
    use crate::module::{Module, PortDirection};

    /// Builds a miniature slice: a VCO inverter on VCTRLP, a logic inverter
    /// on VDD, and a DAC resistor.
    fn mini_slice() -> FlatNetlist {
        let mut m = Module::new("mini");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vctrlp = m.add_port("VCTRLP", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let a = m.add_net("a");
        let b = m.add_net("b");
        let c = m.add_net("c");
        m.add_leaf(
            "VCO0",
            "INVX1",
            [("A", a), ("Y", b), ("VDD", vctrlp), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf(
            "LOG0",
            "INVX1",
            [("A", b), ("Y", c), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        m.add_leaf("R0", "RESLO", [("T1", c), ("T2", vctrlp)])
            .unwrap();
        m.add_leaf("R1", "RESHI", [("T1", a), ("T2", vctrlp)])
            .unwrap();
        Design::new(m).unwrap().flatten()
    }

    #[test]
    fn infer_partitions_by_supply() {
        let flat = mini_slice();
        let plan = PowerPlan::infer(&flat).unwrap();
        assert_eq!(plan.domain_count(), 2); // PD_VDD + PD_VCTRLP
        assert_eq!(plan.group_count(), 2); // GROUP_RESLO + GROUP_RESHI
        assert_eq!(plan.region_of("VCO0").unwrap().name, "PD_VCTRLP");
        assert_eq!(plan.region_of("LOG0").unwrap().name, "PD_VDD");
        assert_eq!(plan.region_of("R0").unwrap().name, "GROUP_RESLO");
        assert_eq!(plan.region_of("R1").unwrap().name, "GROUP_RESHI");
    }

    #[test]
    fn validate_accepts_inferred_plan() {
        let flat = mini_slice();
        let plan = PowerPlan::infer(&flat).unwrap();
        plan.validate(&flat).unwrap();
    }

    #[test]
    fn validate_catches_missing_cells() {
        let flat = mini_slice();
        let plan = PowerPlan::infer(&flat).unwrap();
        // Validate against a netlist with one extra, unassigned cell.
        let mut bigger = flat.clone();
        let mut extra = bigger.cells[0].clone();
        extra.path = "GHOST".to_string();
        bigger.cells.push(extra);
        let err = plan.validate(&bigger).unwrap_err();
        assert_eq!(err, NetlistError::LintFailed { violations: 1 });
    }

    #[test]
    fn cells_in_lists_members() {
        let flat = mini_slice();
        let plan = PowerPlan::infer(&flat).unwrap();
        assert_eq!(plan.cells_in("PD_VCTRLP"), vec!["VCO0"]);
        assert_eq!(plan.cells_in("GROUP_RESLO"), vec!["R0"]);
        assert!(plan.cells_in("PD_NOPE").is_empty());
    }

    #[test]
    fn regions_display() {
        let flat = mini_slice();
        let plan = PowerPlan::infer(&flat).unwrap();
        let text: Vec<String> = plan.regions().iter().map(|r| r.to_string()).collect();
        assert!(text.iter().any(|t| t.contains("power domain on VCTRLP")));
        assert!(text.iter().any(|t| t.contains("component group")));
        assert!(plan.to_string().contains("2 domains"));
    }
}
