//! Error types for netlist construction, parsing and lint.

use std::error::Error;
use std::fmt;

/// Errors produced while building, serialising or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// An instance referenced a pin the cell does not have.
    UnknownPin {
        /// Library cell or module name.
        cell: String,
        /// The offending pin name.
        pin: String,
    },
    /// A leaf instance used a library cell name outside the supported set.
    UnknownCell {
        /// The offending cell name.
        cell: String,
    },
    /// A name (module, instance, net or port) was declared twice.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A hierarchical instance referenced a module absent from the design.
    MissingModule {
        /// The missing module name.
        module: String,
    },
    /// A required pin was left unconnected.
    UnconnectedPin {
        /// Instance path.
        instance: String,
        /// Pin name.
        pin: String,
    },
    /// The Verilog reader hit a syntax problem.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Lint found structural problems; the report carries the details.
    LintFailed {
        /// Number of violations.
        violations: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownPin { cell, pin } => {
                write!(f, "cell {cell} has no pin {pin}")
            }
            NetlistError::UnknownCell { cell } => write!(f, "unknown library cell {cell}"),
            NetlistError::DuplicateName { name } => write!(f, "duplicate name {name}"),
            NetlistError::MissingModule { module } => {
                write!(f, "instance references missing module {module}")
            }
            NetlistError::UnconnectedPin { instance, pin } => {
                write!(f, "pin {pin} of {instance} is unconnected")
            }
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::LintFailed { violations } => {
                write!(f, "netlist lint failed with {violations} violations")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = NetlistError::UnknownPin {
            cell: "NOR3X4".into(),
            pin: "D".into(),
        };
        assert_eq!(e.to_string(), "cell NOR3X4 has no pin D");
        let e = NetlistError::Parse {
            line: 7,
            message: "expected ;".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
