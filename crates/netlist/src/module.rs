//! Modules, ports, nets and instances — the hierarchical netlist.

use crate::cellpins::LeafPins;
use crate::error::NetlistError;
use std::collections::BTreeMap;
use std::fmt;

/// Index of a net inside one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

/// Index of a port inside one [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub(crate) usize);

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Driven from outside.
    Input,
    /// Driven by this module.
    Output,
    /// Bidirectional (analog nets, supplies — the paper's modules declare
    /// supplies and analog nodes as `inout`).
    Inout,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PortDirection::Input => "input",
            PortDirection::Output => "output",
            PortDirection::Inout => "inout",
        };
        f.write_str(s)
    }
}

/// A module port: a named, directed connection to the module's boundary.
/// Every port owns a net of the same name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction.
    pub direction: PortDirection,
    /// The internal net the port is bonded to.
    pub net: NetId,
}

/// What an instance instantiates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceKind {
    /// A library leaf cell (e.g. `NOR3X4`).
    Leaf {
        /// Library cell name.
        cell: String,
    },
    /// Another module of the same design.
    Hierarchical {
        /// Module name.
        module: String,
    },
}

/// An instance inside a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name, unique within the module.
    pub name: String,
    /// Leaf cell or submodule.
    pub kind: InstanceKind,
    /// Pin-name → net connections.
    pub connections: BTreeMap<String, NetId>,
}

impl Instance {
    /// The library cell name if this is a leaf instance.
    pub fn leaf_cell(&self) -> Option<&str> {
        match &self.kind {
            InstanceKind::Leaf { cell } => Some(cell),
            InstanceKind::Hierarchical { .. } => None,
        }
    }
}

/// One level of netlist hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    name: String,
    ports: Vec<Port>,
    nets: Vec<String>,
    net_index: BTreeMap<String, NetId>,
    instances: Vec<Instance>,
}

impl Module {
    /// Creates an empty module.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "module name must be non-empty");
        Module {
            name,
            ports: Vec::new(),
            nets: Vec::new(),
            net_index: BTreeMap::new(),
            instances: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a net; names are unique (adding an existing name returns the
    /// existing net).
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        if let Some(&id) = self.net_index.get(&name) {
            return id;
        }
        let id = NetId(self.nets.len());
        self.net_index.insert(name.clone(), id);
        self.nets.push(name);
        id
    }

    /// Adds a port (and its net). Returns the net the port is bonded to.
    ///
    /// # Panics
    ///
    /// Panics if a port of this name already exists.
    pub fn add_port(&mut self, name: impl Into<String>, direction: PortDirection) -> NetId {
        let name = name.into();
        assert!(
            !self.ports.iter().any(|p| p.name == name),
            "duplicate port {name}"
        );
        let net = self.add_net(name.clone());
        self.ports.push(Port {
            name,
            direction,
            net,
        });
        net
    }

    /// Adds a leaf instance with the given pin connections.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::UnknownCell`] if the cell name is unsupported.
    /// * [`NetlistError::UnknownPin`] if a connection names a pin the cell
    ///   does not have.
    /// * [`NetlistError::DuplicateName`] if the instance name is taken.
    /// * [`NetlistError::UnconnectedPin`] if a cell pin is left open.
    pub fn add_leaf<'p>(
        &mut self,
        name: impl Into<String>,
        cell: &str,
        connections: impl IntoIterator<Item = (&'p str, NetId)>,
    ) -> Result<(), NetlistError> {
        let name = name.into();
        if self.instances.iter().any(|i| i.name == name) {
            return Err(NetlistError::DuplicateName { name });
        }
        let pins = LeafPins::for_cell(cell)?;
        let mut map = BTreeMap::new();
        for (pin, net) in connections {
            if pins.role(pin).is_none() {
                return Err(NetlistError::UnknownPin {
                    cell: cell.to_string(),
                    pin: pin.to_string(),
                });
            }
            map.insert(pin.to_string(), net);
        }
        for (pin, _) in pins.pins() {
            if !map.contains_key(*pin) {
                return Err(NetlistError::UnconnectedPin {
                    instance: name,
                    pin: (*pin).to_string(),
                });
            }
        }
        self.instances.push(Instance {
            name,
            kind: InstanceKind::Leaf {
                cell: cell.to_string(),
            },
            connections: map,
        });
        Ok(())
    }

    /// Adds a hierarchical instance of `module` with port-name → net
    /// connections. Port existence is validated at [`crate::Design`]
    /// construction, where the referenced module is available.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the instance name is
    /// taken.
    pub fn add_submodule<'p>(
        &mut self,
        name: impl Into<String>,
        module: &str,
        connections: impl IntoIterator<Item = (&'p str, NetId)>,
    ) -> Result<(), NetlistError> {
        let name = name.into();
        if self.instances.iter().any(|i| i.name == name) {
            return Err(NetlistError::DuplicateName { name });
        }
        self.instances.push(Instance {
            name,
            kind: InstanceKind::Hierarchical {
                module: module.to_string(),
            },
            connections: connections
                .into_iter()
                .map(|(p, n)| (p.to_string(), n))
                .collect(),
        });
        Ok(())
    }

    /// The module's ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// The module's instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Name of net `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this module.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.0]
    }

    /// Looks up a net by name.
    pub fn net(&self, name: &str) -> Option<NetId> {
        self.net_index.get(name).copied()
    }

    /// All net names in id order.
    pub fn net_names(&self) -> &[String] {
        &self.nets
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// True if the named net is bonded to a port.
    pub fn is_port_net(&self, id: NetId) -> bool {
        self.ports.iter().any(|p| p.net == id)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "module {} ({} ports, {} nets, {} instances)",
            self.name,
            self.ports.len(),
            self.nets.len(),
            self.instances.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_own_nets() {
        let mut m = Module::new("top");
        let a = m.add_port("A", PortDirection::Input);
        assert_eq!(m.net_name(a), "A");
        assert!(m.is_port_net(a));
        assert_eq!(m.port("A").unwrap().direction, PortDirection::Input);
    }

    #[test]
    fn add_net_is_idempotent() {
        let mut m = Module::new("top");
        let x1 = m.add_net("X");
        let x2 = m.add_net("X");
        assert_eq!(x1, x2);
        assert_eq!(m.net_count(), 1);
    }

    #[test]
    fn leaf_requires_all_pins() {
        let mut m = Module::new("top");
        let a = m.add_net("a");
        let y = m.add_net("y");
        let vdd = m.add_net("vdd");
        let vss = m.add_net("vss");
        // Missing VSS.
        let err = m
            .add_leaf("I0", "INVX1", [("A", a), ("Y", y), ("VDD", vdd)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::UnconnectedPin { .. }));
        // Complete.
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        assert_eq!(m.instances().len(), 1);
        assert_eq!(m.instances()[0].leaf_cell(), Some("INVX1"));
    }

    #[test]
    fn unknown_pin_rejected() {
        let mut m = Module::new("top");
        let a = m.add_net("a");
        let err = m.add_leaf("I0", "INVX1", [("Z", a)]).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownPin { .. }));
    }

    #[test]
    fn unknown_cell_rejected() {
        let mut m = Module::new("top");
        let a = m.add_net("a");
        let err = m.add_leaf("I0", "MUX21X1", [("A", a)]).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownCell { .. }));
    }

    #[test]
    fn duplicate_instance_rejected() {
        let mut m = Module::new("top");
        let t1 = m.add_net("t1");
        let t2 = m.add_net("t2");
        m.add_leaf("R0", "RESLO", [("T1", t1), ("T2", t2)]).unwrap();
        let err = m
            .add_leaf("R0", "RESLO", [("T1", t1), ("T2", t2)])
            .unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName { .. }));
    }

    #[test]
    #[should_panic(expected = "duplicate port")]
    fn duplicate_port_panics() {
        let mut m = Module::new("top");
        m.add_port("A", PortDirection::Input);
        m.add_port("A", PortDirection::Output);
    }

    #[test]
    fn submodule_instances() {
        let mut m = Module::new("top");
        let clk = m.add_port("CLK", PortDirection::Input);
        m.add_submodule("S0", "slice", [("CLK", clk)]).unwrap();
        assert_eq!(m.instances()[0].leaf_cell(), None);
        match &m.instances()[0].kind {
            InstanceKind::Hierarchical { module } => assert_eq!(module, "slice"),
            _ => panic!("expected hierarchical"),
        }
    }

    #[test]
    fn display_counts() {
        let mut m = Module::new("adc");
        m.add_port("CLK", PortDirection::Input);
        assert_eq!(m.to_string(), "module adc (1 ports, 1 nets, 0 instances)");
    }
}
