//! VCD (Value Change Dump) waveform export.
//!
//! The standard waveform interchange format, written by every Verilog
//! simulator; viewers like GTKWave open these directly. Used here to dump
//! gate-level traces from [`crate::GateSimulator`] runs and behavioral
//! captures from the ADC simulator (via the bench harness).

use crate::gatesim::Logic;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A VCD waveform writer: declare signals, then record value changes per
/// timestamp.
#[derive(Debug)]
pub struct VcdWriter {
    timescale: String,
    module: String,
    signals: Vec<(String, usize)>, // name, width
    ids: BTreeMap<String, String>,
    changes: Vec<(u64, String, String)>, // time, id, value
    last: BTreeMap<String, String>,
}

impl VcdWriter {
    /// Creates a writer; `timescale` like `"1ps"`, `module` the scope name.
    pub fn new(timescale: &str, module: &str) -> Self {
        VcdWriter {
            timescale: timescale.to_string(),
            module: module.to_string(),
            signals: Vec::new(),
            ids: BTreeMap::new(),
            changes: Vec::new(),
            last: BTreeMap::new(),
        }
    }

    fn id_for(index: usize) -> String {
        // Printable VCD identifier characters: '!' (33) … '~' (126).
        let mut i = index;
        let mut id = String::new();
        loop {
            id.push((33 + (i % 94)) as u8 as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        id
    }

    /// Declares a signal of `width` bits. Signals must be declared before
    /// any change is recorded.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or zero width.
    pub fn declare(&mut self, name: &str, width: usize) {
        assert!(width > 0, "signal width must be positive");
        assert!(!self.ids.contains_key(name), "duplicate signal {name}");
        let id = Self::id_for(self.signals.len());
        self.ids.insert(name.to_string(), id);
        self.signals.push((name.to_string(), width));
    }

    /// Records a scalar logic change at `time`.
    ///
    /// # Panics
    ///
    /// Panics if the signal was not declared.
    pub fn change_logic(&mut self, time: u64, name: &str, value: Logic) {
        let v = value.to_string();
        self.push_change(time, name, v);
    }

    /// Records a scalar boolean change at `time`.
    ///
    /// # Panics
    ///
    /// Panics if the signal was not declared.
    pub fn change_bool(&mut self, time: u64, name: &str, value: bool) {
        self.push_change(time, name, if value { "1" } else { "0" }.to_string());
    }

    /// Records a multi-bit value change at `time` (LSB-first width bits).
    ///
    /// # Panics
    ///
    /// Panics if the signal was not declared.
    pub fn change_vector(&mut self, time: u64, name: &str, value: u64) {
        let width = self
            .signals
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("undeclared signal {name}"))
            .1;
        let mut bits = String::with_capacity(width + 2);
        bits.push('b');
        for w in (0..width).rev() {
            bits.push(if value & (1 << w) != 0 { '1' } else { '0' });
        }
        bits.push(' ');
        self.push_change(time, name, bits);
    }

    fn push_change(&mut self, time: u64, name: &str, value: String) {
        let id = self
            .ids
            .get(name)
            .unwrap_or_else(|| panic!("undeclared signal {name}"))
            .clone();
        if self.last.get(name) == Some(&value) {
            return; // VCD is change-based
        }
        self.last.insert(name.to_string(), value.clone());
        self.changes.push((time, id, value));
    }

    /// Serialises the dump.
    pub fn finish(mut self) -> String {
        self.changes.sort_by_key(|(t, _, _)| *t);
        let mut out = String::new();
        let _ = writeln!(out, "$date tdsigma $end");
        let _ = writeln!(out, "$timescale {} $end", self.timescale);
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (name, width) in &self.signals {
            let id = &self.ids[name];
            let kind = if *width == 1 {
                "wire 1"
            } else {
                &format!("wire {width}")[..]
            };
            let _ = writeln!(out, "$var {kind} {id} {name} $end");
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut current = u64::MAX;
        for (time, id, value) in &self.changes {
            if *time != current {
                let _ = writeln!(out, "#{time}");
                current = *time;
            }
            // Vector values carry their own "b…01 " separator; scalars abut the id.
            let _ = writeln!(out, "{value}{id}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_declarations() {
        let mut vcd = VcdWriter::new("1ps", "adc");
        vcd.declare("clk", 1);
        vcd.declare("sum", 6);
        let text = vcd.finish();
        assert!(text.contains("$timescale 1ps $end"));
        assert!(text.contains("$scope module adc $end"));
        assert!(text.contains("$var wire 1 ! clk $end"));
        assert!(text.contains("$var wire 6 \" sum $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_are_time_ordered_and_deduplicated() {
        let mut vcd = VcdWriter::new("1ns", "m");
        vcd.declare("a", 1);
        vcd.change_bool(10, "a", true);
        vcd.change_bool(10, "a", true); // duplicate: dropped
        vcd.change_bool(5, "a", false);
        let text = vcd.finish();
        let pos5 = text.find("#5").expect("time 5 present");
        let pos10 = text.find("#10").expect("time 10 present");
        assert!(pos5 < pos10, "times sorted");
        assert_eq!(text.matches("1!").count(), 1, "dedup");
    }

    #[test]
    fn vectors_render_binary() {
        let mut vcd = VcdWriter::new("1ns", "m");
        vcd.declare("word", 6);
        vcd.change_vector(0, "word", 0b101001);
        let text = vcd.finish();
        assert!(text.contains("b101001 !"), "{text}");
    }

    #[test]
    fn logic_values_map_to_vcd_chars() {
        let mut vcd = VcdWriter::new("1ns", "m");
        vcd.declare("x", 1);
        vcd.change_logic(0, "x", Logic::X);
        vcd.change_logic(1, "x", Logic::One);
        vcd.change_logic(2, "x", Logic::Z);
        let text = vcd.finish();
        assert!(text.contains("X!"));
        assert!(text.contains("1!"));
        assert!(text.contains("Z!"));
    }

    #[test]
    #[should_panic(expected = "undeclared signal")]
    fn undeclared_signal_panics() {
        let mut vcd = VcdWriter::new("1ns", "m");
        vcd.change_bool(0, "ghost", true);
    }

    #[test]
    #[should_panic(expected = "duplicate signal")]
    fn duplicate_declaration_panics() {
        let mut vcd = VcdWriter::new("1ns", "m");
        vcd.declare("a", 1);
        vcd.declare("a", 1);
    }

    #[test]
    fn many_signals_get_unique_ids() {
        let mut vcd = VcdWriter::new("1ns", "m");
        for i in 0..200 {
            vcd.declare(&format!("s{i}"), 1);
        }
        let text = vcd.finish();
        // 200 unique $var lines.
        assert_eq!(text.matches("$var wire 1 ").count(), 200);
    }
}
