//! Netlist statistics: per-module and per-cell-type census, the numbers a
//! synthesis report prints.

use crate::design::{Design, FlatNetlist};
use crate::module::InstanceKind;
use std::collections::BTreeMap;
use std::fmt;

/// Census of a design: per-module instance counts and the flat leaf-cell
/// histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignStats {
    /// Module name → (leaf instances, hierarchical instances) at that
    /// level (not flattened).
    pub per_module: BTreeMap<String, (usize, usize)>,
    /// Flat library-cell histogram.
    pub cell_histogram: BTreeMap<String, usize>,
    /// Total flattened leaf cells.
    pub total_cells: usize,
    /// Total flat nets.
    pub total_nets: usize,
}

impl DesignStats {
    /// Gathers statistics for a design.
    pub fn of(design: &Design) -> Self {
        let mut per_module = BTreeMap::new();
        for module in design.modules() {
            let mut leafs = 0;
            let mut hiers = 0;
            for inst in module.instances() {
                match inst.kind {
                    InstanceKind::Leaf { .. } => leafs += 1,
                    InstanceKind::Hierarchical { .. } => hiers += 1,
                }
            }
            per_module.insert(module.name().to_string(), (leafs, hiers));
        }
        let flat = design.flatten();
        Self::with_flat(per_module, &flat)
    }

    fn with_flat(per_module: BTreeMap<String, (usize, usize)>, flat: &FlatNetlist) -> Self {
        let mut cell_histogram: BTreeMap<String, usize> = BTreeMap::new();
        for cell in &flat.cells {
            *cell_histogram.entry(cell.cell.clone()).or_default() += 1;
        }
        DesignStats {
            per_module,
            cell_histogram,
            total_cells: flat.len(),
            total_nets: flat.nets.len(),
        }
    }

    /// Count of one library cell in the flat design.
    pub fn count_of(&self, cell: &str) -> usize {
        self.cell_histogram.get(cell).copied().unwrap_or(0)
    }

    /// Number of distinct library cells used.
    pub fn distinct_cells(&self) -> usize {
        self.cell_histogram.len()
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design: {} leaf cells ({} distinct types), {} nets",
            self.total_cells,
            self.distinct_cells(),
            self.total_nets
        )?;
        writeln!(f, "  per module (local instances):")?;
        for (name, (leafs, hiers)) in &self.per_module {
            writeln!(f, "    {name:<16} {leafs:>5} leaf, {hiers:>4} hierarchical")?;
        }
        writeln!(f, "  flat cell histogram:")?;
        for (cell, count) in &self.cell_histogram {
            writeln!(f, "    {cell:<10} {count:>6}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{Module, PortDirection};

    fn design() -> Design {
        let mut pair = Module::new("pair");
        let a = pair.add_port("A", PortDirection::Input);
        let y = pair.add_port("Y", PortDirection::Output);
        let vdd = pair.add_port("VDD", PortDirection::Inout);
        let vss = pair.add_port("VSS", PortDirection::Inout);
        let mid = pair.add_net("mid");
        pair.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", mid), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        pair.add_leaf(
            "I1",
            "INVX2",
            [("A", mid), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let mut top = Module::new("top");
        let tin = top.add_port("IN", PortDirection::Input);
        let tout = top.add_port("OUT", PortDirection::Output);
        let vdd = top.add_port("VDD", PortDirection::Inout);
        let vss = top.add_port("VSS", PortDirection::Inout);
        let x = top.add_net("x");
        top.add_submodule(
            "P0",
            "pair",
            [("A", tin), ("Y", x), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        top.add_submodule(
            "P1",
            "pair",
            [("A", x), ("Y", tout), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        Design::with_modules([pair, top], "top").unwrap()
    }

    #[test]
    fn census_counts_are_right() {
        let stats = DesignStats::of(&design());
        assert_eq!(stats.total_cells, 4);
        assert_eq!(stats.count_of("INVX1"), 2);
        assert_eq!(stats.count_of("INVX2"), 2);
        assert_eq!(stats.count_of("NOR3X4"), 0);
        assert_eq!(stats.distinct_cells(), 2);
        assert_eq!(stats.per_module["pair"], (2, 0));
        assert_eq!(stats.per_module["top"], (0, 2));
    }

    #[test]
    fn net_count_covers_flat_nets() {
        let stats = DesignStats::of(&design());
        // IN, OUT, VDD, VSS, x, P0/mid, P1/mid = 7.
        assert_eq!(stats.total_nets, 7);
    }

    #[test]
    fn display_is_a_report() {
        let text = DesignStats::of(&design()).to_string();
        assert!(text.contains("4 leaf cells"));
        assert!(text.contains("INVX1"));
        assert!(text.contains("per module"));
    }
}
