//! Leaf-cell pin definitions.
//!
//! The netlist crate is deliberately independent of `tdsigma-tech`; the pin
//! interface of each supported library cell is defined here by name
//! pattern. `tdsigma-core` has a test asserting that every cell in the
//! technology catalog resolves to a pin set, so the two views cannot drift.

use crate::error::NetlistError;
use std::fmt;

/// The role a pin plays on a leaf cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinRole {
    /// Logic input.
    Input,
    /// Logic output (a driver).
    Output,
    /// Bidirectional / passive terminal (resistor ends).
    Passive,
    /// Power pin (VDD).
    Power,
    /// Ground pin (VSS).
    Ground,
}

impl fmt::Display for PinRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PinRole::Input => "input",
            PinRole::Output => "output",
            PinRole::Passive => "passive",
            PinRole::Power => "power",
            PinRole::Ground => "ground",
        };
        f.write_str(s)
    }
}

/// Pin interface of a library leaf cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafPins {
    cell: String,
    pins: Vec<(&'static str, PinRole)>,
}

impl LeafPins {
    /// Resolves the pin set of a library cell by name.
    ///
    /// Supported families: `INV*`, `BUF*`, `NAND2*`, `NAND3*`, `NOR2*`,
    /// `NOR3*`, `XOR2*`, `LATCH*`, `DFF*`, `RESLO`, `RESHI`, `TIE*`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownCell`] for unsupported names.
    pub fn for_cell(cell: &str) -> Result<Self, NetlistError> {
        let pg: [(&'static str, PinRole); 2] = [("VDD", PinRole::Power), ("VSS", PinRole::Ground)];
        let pins: Vec<(&'static str, PinRole)> = if cell.starts_with("INV")
            || cell.starts_with("BUF")
        {
            let mut v = vec![("A", PinRole::Input), ("Y", PinRole::Output)];
            v.extend(pg);
            v
        } else if cell.starts_with("NAND2") || cell.starts_with("NOR2") || cell.starts_with("XOR2")
        {
            let mut v = vec![
                ("A", PinRole::Input),
                ("B", PinRole::Input),
                ("Y", PinRole::Output),
            ];
            v.extend(pg);
            v
        } else if cell.starts_with("NAND3") || cell.starts_with("NOR3") {
            let mut v = vec![
                ("A", PinRole::Input),
                ("B", PinRole::Input),
                ("C", PinRole::Input),
                ("Y", PinRole::Output),
            ];
            v.extend(pg);
            v
        } else if cell.starts_with("LATCH") {
            let mut v = vec![
                ("D", PinRole::Input),
                ("EN", PinRole::Input),
                ("Q", PinRole::Output),
            ];
            v.extend(pg);
            v
        } else if cell.starts_with("DFF") {
            let mut v = vec![
                ("D", PinRole::Input),
                ("CK", PinRole::Input),
                ("Q", PinRole::Output),
            ];
            v.extend(pg);
            v
        } else if cell == "RESLO" || cell == "RESHI" {
            vec![("T1", PinRole::Passive), ("T2", PinRole::Passive)]
        } else if cell.starts_with("TIE") {
            let mut v = vec![("Y", PinRole::Output)];
            v.extend(pg);
            v
        } else {
            return Err(NetlistError::UnknownCell {
                cell: cell.to_string(),
            });
        };
        Ok(LeafPins {
            cell: cell.to_string(),
            pins,
        })
    }

    /// The cell name this pin set belongs to.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// All pins in declaration order.
    pub fn pins(&self) -> &[(&'static str, PinRole)] {
        &self.pins
    }

    /// The role of pin `name`, if it exists.
    pub fn role(&self, name: &str) -> Option<PinRole> {
        self.pins.iter().find(|(n, _)| *n == name).map(|(_, r)| *r)
    }

    /// Names of the logic input pins.
    pub fn inputs(&self) -> Vec<&'static str> {
        self.pins_with(PinRole::Input)
    }

    /// Names of the output pins.
    pub fn outputs(&self) -> Vec<&'static str> {
        self.pins_with(PinRole::Output)
    }

    /// True if the cell has power/ground pins (resistor fragments do not —
    /// the crux of the paper's floorplanning problem).
    pub fn has_power_pins(&self) -> bool {
        self.pins
            .iter()
            .any(|(_, r)| matches!(r, PinRole::Power | PinRole::Ground))
    }

    fn pins_with(&self, role: PinRole) -> Vec<&'static str> {
        self.pins
            .iter()
            .filter(|(_, r)| *r == role)
            .map(|(n, _)| *n)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverter_pins() {
        let p = LeafPins::for_cell("INVX1").unwrap();
        assert_eq!(p.inputs(), vec!["A"]);
        assert_eq!(p.outputs(), vec!["Y"]);
        assert!(p.has_power_pins());
        assert_eq!(p.role("VDD"), Some(PinRole::Power));
        assert_eq!(p.role("NOPE"), None);
    }

    #[test]
    fn nor3_matches_paper_table1() {
        // Table 1 instantiates NOR3X4 with pins Y, VDD, VSS, A, B, C.
        let p = LeafPins::for_cell("NOR3X4").unwrap();
        for pin in ["Y", "VDD", "VSS", "A", "B", "C"] {
            assert!(p.role(pin).is_some(), "missing pin {pin}");
        }
        assert_eq!(p.inputs().len(), 3);
    }

    #[test]
    fn resistor_is_passive_without_power() {
        for cell in ["RESLO", "RESHI"] {
            let p = LeafPins::for_cell(cell).unwrap();
            assert!(!p.has_power_pins(), "{cell} must not have P/G pins");
            assert_eq!(p.role("T1"), Some(PinRole::Passive));
            assert_eq!(p.role("T2"), Some(PinRole::Passive));
            assert!(p.outputs().is_empty());
        }
    }

    #[test]
    fn all_families_resolve() {
        for cell in [
            "INVX1", "INVX2", "INVX4", "BUFX2", "NAND2X1", "NAND3X1", "NOR2X1", "NOR3X4", "XOR2X1",
            "LATCHX1", "DFFX1", "RESLO", "RESHI", "TIEX1",
        ] {
            assert!(LeafPins::for_cell(cell).is_ok(), "{cell} must resolve");
        }
    }

    #[test]
    fn unknown_cell_errors() {
        assert!(matches!(
            LeafPins::for_cell("AOI22X1"),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn latch_and_dff_pins() {
        let latch = LeafPins::for_cell("LATCHX1").unwrap();
        assert_eq!(latch.inputs(), vec!["D", "EN"]);
        let dff = LeafPins::for_cell("DFFX2").unwrap();
        assert_eq!(dff.inputs(), vec!["D", "CK"]);
        assert_eq!(dff.outputs(), vec!["Q"]);
    }

    #[test]
    fn xor_pins() {
        let p = LeafPins::for_cell("XOR2X1").unwrap();
        assert_eq!(p.inputs(), vec!["A", "B"]);
    }

    #[test]
    fn role_display() {
        assert_eq!(PinRole::Power.to_string(), "power");
        assert_eq!(PinRole::Passive.to_string(), "passive");
    }
}
