//! Gate-level Verilog writer and reader (paper §3.2, Tables 1–2).
//!
//! The writer emits exactly the style the paper shows: one module per
//! hierarchy level, `inout`/`input`/`output` declarations, `wire`
//! declarations, and named-pin instantiations. The reader accepts the same
//! subset, giving loss-free round trips (asserted by property tests in the
//! core crate).

use crate::design::Design;
use crate::error::NetlistError;
use crate::module::{Module, PortDirection};
use std::fmt::Write as _;

/// Serialises a whole design bottom-up (submodules before the top, so the
/// file is self-contained for tools that read in order).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] if a net or module name is not a legal
/// Verilog identifier (flattened names with `/` must be mangled first).
pub fn write_design(design: &Design) -> Result<String, NetlistError> {
    let mut out = String::new();
    for module in design.modules_bottom_up() {
        write_module(module, &mut out)?;
        out.push('\n');
    }
    Ok(out)
}

fn check_identifier(name: &str) -> Result<(), NetlistError> {
    let ok = !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().expect("non-empty").is_ascii_digit();
    if ok {
        Ok(())
    } else {
        Err(NetlistError::Parse {
            line: 0,
            message: format!("illegal Verilog identifier: {name}"),
        })
    }
}

fn write_module(module: &Module, out: &mut String) -> Result<(), NetlistError> {
    check_identifier(module.name())?;
    let port_list: Vec<&str> = module.ports().iter().map(|p| p.name.as_str()).collect();
    for p in &port_list {
        check_identifier(p)?;
    }
    writeln!(out, "module {} ({});", module.name(), port_list.join(", "))
        .expect("writing to String cannot fail");

    for dir in [
        PortDirection::Inout,
        PortDirection::Input,
        PortDirection::Output,
    ] {
        let names: Vec<&str> = module
            .ports()
            .iter()
            .filter(|p| p.direction == dir)
            .map(|p| p.name.as_str())
            .collect();
        if !names.is_empty() {
            writeln!(out, "  {} {};", dir, names.join(", ")).expect("infallible");
        }
    }

    let wires: Vec<&str> = module
        .net_names()
        .iter()
        .enumerate()
        .filter(|(i, _)| !module.is_port_net(crate::module::NetId(*i)))
        .map(|(_, n)| n.as_str())
        .collect();
    for w in &wires {
        check_identifier(w)?;
    }
    if !wires.is_empty() {
        writeln!(out, "  wire {};", wires.join(", ")).expect("infallible");
    }
    out.push('\n');

    for inst in module.instances() {
        check_identifier(&inst.name)?;
        let cell = match &inst.kind {
            crate::module::InstanceKind::Leaf { cell } => cell.as_str(),
            crate::module::InstanceKind::Hierarchical { module } => module.as_str(),
        };
        let pins: Vec<String> = inst
            .connections
            .iter()
            .map(|(pin, net)| format!(".{}({})", pin, module.net_name(*net)))
            .collect();
        writeln!(out, "  {} {} ({});", cell, inst.name, pins.join(", ")).expect("infallible");
    }
    writeln!(out, "endmodule").expect("infallible");
    Ok(())
}

/// Parses a gate-level Verilog file of the subset the writer produces.
///
/// The last module in the file becomes the design top (matching the
/// writer's bottom-up order). Instance names that match a module defined in
/// the same file become hierarchical instances; all others are leaf cells.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on syntax errors and propagates netlist
/// construction errors (unknown cells/pins etc.).
pub fn read_design(text: &str) -> Result<Design, NetlistError> {
    let mut raw_modules: Vec<RawModule> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((_, line)) = lines.peek() {
        if line.trim().starts_with("module") {
            raw_modules.push(parse_raw_module(&mut lines)?);
        } else {
            lines.next();
        }
    }
    if raw_modules.is_empty() {
        return Err(NetlistError::Parse {
            line: 1,
            message: "no module found".to_string(),
        });
    }
    let module_names: Vec<String> = raw_modules.iter().map(|m| m.name.clone()).collect();
    let top = module_names.last().expect("non-empty").clone();
    let mut modules = Vec::new();
    for raw in raw_modules {
        modules.push(raw.build(&module_names)?);
    }
    Design::with_modules(modules, &top)
}

/// One parsed instantiation: cell, instance name, (pin, net) connections.
type RawInstance = (String, String, Vec<(String, String)>);

struct RawModule {
    name: String,
    /// Header order of the port list.
    port_order: Vec<String>,
    ports: Vec<(String, PortDirection)>,
    wires: Vec<String>,
    instances: Vec<RawInstance>,
}

impl RawModule {
    fn build(self, module_names: &[String]) -> Result<Module, NetlistError> {
        let mut m = Module::new(self.name);
        for name in &self.port_order {
            let dir = self
                .ports
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, d)| *d)
                .expect("parser checked every port has a direction");
            m.add_port(name.clone(), dir);
        }
        for w in self.wires {
            m.add_net(w);
        }
        for (cell, inst_name, pins) in self.instances {
            let net_ids: Vec<(String, crate::module::NetId)> = pins
                .into_iter()
                .map(|(pin, net)| {
                    let id = m.add_net(net);
                    (pin, id)
                })
                .collect();
            let conns = net_ids.iter().map(|(p, n)| (p.as_str(), *n));
            if module_names.contains(&cell) {
                m.add_submodule(inst_name, &cell, conns)?;
            } else {
                m.add_leaf(inst_name, &cell, conns)?;
            }
        }
        Ok(m)
    }
}

fn parse_raw_module<'a, I>(lines: &mut std::iter::Peekable<I>) -> Result<RawModule, NetlistError>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let (lineno, header) = lines.next().expect("caller checked a module line exists");
    let header = header.trim();
    let err = |lineno: usize, msg: &str| NetlistError::Parse {
        line: lineno + 1,
        message: msg.to_string(),
    };
    let rest = header
        .strip_prefix("module")
        .ok_or_else(|| err(lineno, "expected module"))?
        .trim();
    let open = rest.find('(').ok_or_else(|| err(lineno, "expected ("))?;
    let close = rest.rfind(')').ok_or_else(|| err(lineno, "expected )"))?;
    let name = rest[..open].trim().to_string();
    let port_names: Vec<String> = rest[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();

    let mut ports: Vec<(String, PortDirection)> = Vec::new();
    let mut wires = Vec::new();
    let mut instances = Vec::new();
    for (lineno, raw_line) in lines.by_ref() {
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if line == "endmodule" {
            // Ports must be declared with directions.
            for p in &port_names {
                if !ports.iter().any(|(n, _)| n == p) {
                    return Err(err(lineno, &format!("port {p} has no direction")));
                }
            }
            return Ok(RawModule {
                name,
                port_order: port_names,
                ports,
                wires,
                instances,
            });
        }
        let line = line
            .strip_suffix(';')
            .ok_or_else(|| err(lineno, "expected trailing ;"))?
            .trim();
        if let Some(rest) = line.strip_prefix("inout ") {
            for n in rest.split(',') {
                ports.push((n.trim().to_string(), PortDirection::Inout));
            }
        } else if let Some(rest) = line.strip_prefix("input ") {
            for n in rest.split(',') {
                ports.push((n.trim().to_string(), PortDirection::Input));
            }
        } else if let Some(rest) = line.strip_prefix("output ") {
            for n in rest.split(',') {
                ports.push((n.trim().to_string(), PortDirection::Output));
            }
        } else if let Some(rest) = line.strip_prefix("wire ") {
            for n in rest.split(',') {
                wires.push(n.trim().to_string());
            }
        } else {
            // Instance: CELL NAME (.PIN(NET), ...)
            let open = line
                .find('(')
                .ok_or_else(|| err(lineno, "expected instance ("))?;
            let head: Vec<&str> = line[..open].split_whitespace().collect();
            if head.len() != 2 {
                return Err(err(lineno, "expected `CELL NAME (`"));
            }
            let close = line.rfind(')').ok_or_else(|| err(lineno, "expected )"))?;
            let mut pins = Vec::new();
            for conn in split_top_level_commas(&line[open + 1..close]) {
                let conn = conn.trim();
                if conn.is_empty() {
                    continue;
                }
                let conn = conn
                    .strip_prefix('.')
                    .ok_or_else(|| err(lineno, "expected .PIN(NET)"))?;
                let popen = conn.find('(').ok_or_else(|| err(lineno, "expected ("))?;
                let pclose = conn.rfind(')').ok_or_else(|| err(lineno, "expected )"))?;
                pins.push((
                    conn[..popen].trim().to_string(),
                    conn[popen + 1..pclose].trim().to_string(),
                ));
            }
            instances.push((head[0].to_string(), head[1].to_string(), pins));
        }
    }
    Err(err(0, "missing endmodule"))
}

fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    /// The paper's Table 1 comparator, reconstructed.
    fn comparator_module() -> Module {
        let mut m = Module::new("comparator");
        let q = m.add_port("Q", PortDirection::Output);
        let qb = m.add_port("QB", PortDirection::Output);
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let clk = m.add_port("CLK", PortDirection::Input);
        let inm = m.add_port("INM", PortDirection::Input);
        let inp = m.add_port("INP", PortDirection::Input);
        let outp = m.add_net("OUTP");
        let outm = m.add_net("OUTM");
        m.add_leaf(
            "I0",
            "NOR3X4",
            [
                ("Y", outp),
                ("VDD", vdd),
                ("VSS", vss),
                ("A", outm),
                ("B", inp),
                ("C", clk),
            ],
        )
        .unwrap();
        m.add_leaf(
            "I1",
            "NOR3X4",
            [
                ("Y", outm),
                ("VDD", vdd),
                ("VSS", vss),
                ("A", outp),
                ("B", inm),
                ("C", clk),
            ],
        )
        .unwrap();
        m.add_leaf(
            "I2",
            "NOR2X1",
            [("Y", q), ("VDD", vdd), ("VSS", vss), ("A", outp), ("B", qb)],
        )
        .unwrap();
        m.add_leaf(
            "I3",
            "NOR2X1",
            [("Y", qb), ("VDD", vdd), ("VSS", vss), ("A", outm), ("B", q)],
        )
        .unwrap();
        m
    }

    #[test]
    fn writer_matches_paper_style() {
        let design = Design::new(comparator_module()).unwrap();
        let v = write_design(&design).unwrap();
        assert!(v.contains("module comparator (Q, QB, VDD, VSS, CLK, INM, INP);"));
        assert!(v.contains("inout VDD, VSS;"));
        assert!(v.contains("input CLK, INM, INP;"));
        assert!(v.contains("output Q, QB;"));
        assert!(v.contains("wire OUTP, OUTM;"));
        assert!(v.contains("NOR3X4 I0"));
        assert!(v.contains(".B(INP)"));
        assert!(v.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let design = Design::new(comparator_module()).unwrap();
        let v = write_design(&design).unwrap();
        let back = read_design(&v).unwrap();
        assert_eq!(back.top_name(), "comparator");
        let top = back.top();
        assert_eq!(top.ports().len(), 7);
        assert_eq!(top.instances().len(), 4);
        // Re-writing gives the identical text (canonical form).
        let v2 = write_design(&back).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn hierarchical_roundtrip() {
        let mut inner = Module::new("cell_pair");
        let a = inner.add_port("A", PortDirection::Input);
        let y = inner.add_port("Y", PortDirection::Output);
        let vdd = inner.add_port("VDD", PortDirection::Inout);
        let vss = inner.add_port("VSS", PortDirection::Inout);
        let mid = inner.add_net("mid");
        inner
            .add_leaf(
                "I0",
                "INVX1",
                [("A", a), ("Y", mid), ("VDD", vdd), ("VSS", vss)],
            )
            .unwrap();
        inner
            .add_leaf(
                "I1",
                "INVX2",
                [("A", mid), ("Y", y), ("VDD", vdd), ("VSS", vss)],
            )
            .unwrap();
        let mut top = Module::new("chain");
        let tin = top.add_port("IN", PortDirection::Input);
        let tout = top.add_port("OUT", PortDirection::Output);
        let vdd = top.add_port("VDD", PortDirection::Inout);
        let vss = top.add_port("VSS", PortDirection::Inout);
        top.add_submodule(
            "P0",
            "cell_pair",
            [("A", tin), ("Y", tout), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let design = Design::with_modules([inner, top], "chain").unwrap();

        let v = write_design(&design).unwrap();
        // Submodule appears before the top.
        assert!(v.find("module cell_pair").unwrap() < v.find("module chain").unwrap());
        let back = read_design(&v).unwrap();
        assert_eq!(back.top_name(), "chain");
        assert_eq!(back.flatten().len(), 2);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(matches!(
            read_design("not verilog at all"),
            Err(NetlistError::Parse { .. })
        ));
        assert!(matches!(
            read_design("module m (A);\n  input A\nendmodule"),
            Err(NetlistError::Parse { .. }) // missing semicolon
        ));
        assert!(matches!(
            read_design("module m (A);\n  input A;\n"),
            Err(NetlistError::Parse { .. }) // missing endmodule
        ));
    }

    #[test]
    fn reader_rejects_undeclared_port_direction() {
        let err = read_design("module m (A);\nendmodule").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
    }

    #[test]
    fn writer_rejects_illegal_identifiers() {
        let mut m = Module::new("top");
        let a = m.add_net("a/b"); // flat-style name
        let y = m.add_net("y");
        let vdd = m.add_net("vdd");
        let vss = m.add_net("vss");
        m.add_leaf(
            "I0",
            "INVX1",
            [("A", a), ("Y", y), ("VDD", vdd), ("VSS", vss)],
        )
        .unwrap();
        let design = Design::new(m).unwrap();
        assert!(write_design(&design).is_err());
    }

    #[test]
    fn split_commas_respects_nesting() {
        let parts = split_top_level_commas(".A(n1), .B(f(x, y)), .C(n3)");
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1].trim(), ".B(f(x, y))");
    }
}
