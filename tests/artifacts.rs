//! Artifact-consistency integration tests: the LEF / DEF / GDS / .fp /
//! Verilog / VCD outputs of one flow must agree with each other.

use std::collections::BTreeSet;
use tdsigma::core::{netgen, spec::AdcSpec};
use tdsigma::layout::physlib::PhysicalLibrary;
use tdsigma::layout::{gds, lef, synthesize, AprOptions};
use tdsigma::netlist::PowerPlan;

fn build() -> (
    AdcSpec,
    tdsigma::netlist::FlatNetlist,
    PhysicalLibrary,
    tdsigma::layout::LayoutResult,
) {
    let spec = AdcSpec::paper_40nm().expect("spec");
    let flat = netgen::generate(&spec).expect("netlist").flatten();
    let plan = PowerPlan::infer(&flat).expect("plan");
    let lib = PhysicalLibrary::for_technology(&spec.tech);
    let layout = synthesize(&flat, &plan, &spec.tech, &AprOptions::default()).expect("APR");
    (spec, flat, lib, layout)
}

#[test]
fn def_lists_every_cell_with_a_lef_macro() {
    let (_, flat, lib, layout) = build();
    let lef_text = lef::to_lef(&lib);
    let def_text = lef::to_def(
        &layout.placement,
        "adc_top",
        layout.floorplan.die.width(),
        layout.floorplan.die.height(),
    );
    // Every distinct library cell used in the DEF has a LEF MACRO.
    let used: BTreeSet<&str> = flat.cells.iter().map(|c| c.cell.as_str()).collect();
    for cell in &used {
        assert!(
            lef_text.contains(&format!("MACRO {cell}")),
            "LEF missing {cell}"
        );
    }
    // DEF component count equals the flat netlist size.
    assert!(def_text.contains(&format!("COMPONENTS {} ;", flat.len())));
    // Placements stay inside the die.
    for cell in &layout.placement.cells {
        assert!(cell.x_nm >= 0 && cell.x_nm < layout.floorplan.die.width());
        assert!(cell.y_nm >= 0 && cell.y_nm < layout.floorplan.die.height());
    }
}

#[test]
fn gds_references_every_used_macro() {
    let (_, flat, lib, layout) = build();
    let gds_text = gds::to_gds_text(&layout.placement, &lib, "adc_top");
    let used: BTreeSet<&str> = flat.cells.iter().map(|c| c.cell.as_str()).collect();
    for cell in &used {
        assert!(
            gds_text.contains(&format!("BGNSTR {cell}")),
            "GDS missing {cell}"
        );
    }
    // One SREF per placed cell.
    assert_eq!(gds_text.matches("SREF ").count(), flat.len());
}

#[test]
fn fp_regions_tile_the_die_and_match_the_power_plan() {
    let (_, flat, _, layout) = build();
    let plan = PowerPlan::infer(&flat).expect("plan");
    let fp = layout.floorplan.to_fp_text();
    for region in plan.regions() {
        assert!(fp.contains(&region.name), ".fp missing {}", region.name);
    }
    // Region rectangles tile the die without overlap (already asserted in
    // unit tests; here: their total area equals the die area).
    let total: i128 = layout.floorplan.regions.iter().map(|r| r.rect.area()).sum();
    assert_eq!(total, layout.floorplan.die.area());
}

#[test]
fn verilog_and_flat_netlist_agree_on_cell_census() {
    let spec = AdcSpec::paper_40nm().expect("spec");
    let design = netgen::generate(&spec).expect("netlist");
    let flat = design.flatten();
    let text = tdsigma::netlist::verilog::write_design(&design).expect("verilog");
    // Count leaf instantiations per cell type in the flat netlist and make
    // sure each type appears in the Verilog.
    let mut census: std::collections::BTreeMap<&str, usize> = Default::default();
    for cell in &flat.cells {
        *census.entry(cell.cell.as_str()).or_default() += 1;
    }
    for (cell, count) in census {
        assert!(count > 0);
        assert!(text.contains(cell), "verilog missing {cell}");
    }
}

#[test]
fn vcd_of_a_capture_is_wellformed() {
    use tdsigma::netlist::VcdWriter;
    let mut spec = AdcSpec::paper_40nm().expect("spec");
    spec.steps_per_cycle = 8;
    let mut sim = tdsigma::core::AdcSimulator::new(spec.clone()).expect("sim");
    let cap = sim.run(|_| 0.0, 64);
    let mut vcd = VcdWriter::new("1ps", "adc");
    vcd.declare("sum", 6);
    let period_ps = (1e12 / spec.fs_hz) as u64;
    for (n, &w) in cap.output.iter().enumerate() {
        vcd.change_vector(n as u64 * period_ps, "sum", w as u64);
    }
    let text = vcd.finish();
    assert!(text.contains("$enddefinitions $end"));
    assert!(text.contains("$var wire 6"));
    assert!(
        text.matches('#').count() > 10,
        "multiple timestamps recorded"
    );
}
