//! Cross-node integration: the scaling-compatibility claims of Table 3 /
//! Fig. 15, verified end-to-end across crates.

use tdsigma::core::{flow::DesignFlow, spec::AdcSpec};

fn run(spec: AdcSpec) -> tdsigma::core::flow::FlowOutcome {
    let mut spec = spec;
    spec.steps_per_cycle = 8;
    DesignFlow::new(spec)
        .with_samples(4096)
        .run()
        .expect("flow")
}

#[test]
fn table3_shape_holds() {
    let o40 = run(AdcSpec::paper_40nm().expect("spec"));
    let o180 = run(AdcSpec::paper_180nm().expect("spec"));

    // SNDR: both in the 69.5-dB class (quick-look captures are a few dB
    // pessimistic; 16k-sample runs in the bench binaries land 67-69).
    assert!(
        o40.report.sndr_db > 55.0,
        "40 nm SNDR {}",
        o40.report.sndr_db
    );
    assert!(
        o180.report.sndr_db > 55.0,
        "180 nm SNDR {}",
        o180.report.sndr_db
    );
    assert!(
        (o40.report.sndr_db - o180.report.sndr_db).abs() < 8.0,
        "nodes should be within a few dB ({} vs {})",
        o40.report.sndr_db,
        o180.report.sndr_db
    );

    // Power: paper ratio 4.0x; accept 2-8x in the same direction.
    let power_ratio = o180.report.power_mw / o40.report.power_mw;
    assert!(
        (2.0..8.0).contains(&power_ratio),
        "power ratio 180/40 = {power_ratio}"
    );

    // Area: paper ratio 12.6x; accept 8-20x.
    let area_ratio = o180.report.area_mm2 / o40.report.area_mm2;
    assert!(
        (8.0..20.0).contains(&area_ratio),
        "area ratio 180/40 = {area_ratio}"
    );

    // FOM: paper ratio 14.2x; accept >= 5x, newer node wins.
    let fom_ratio = o180.report.fom_fj / o40.report.fom_fj;
    assert!(fom_ratio > 5.0, "FOM ratio 180/40 = {fom_ratio}");
    assert!(o40.report.fom_fj < 200.0, "40 nm FOM {}", o40.report.fom_fj);
}

#[test]
fn fig15_digital_share_rises_at_older_node() {
    let o40 = run(AdcSpec::paper_40nm().expect("spec"));
    let o180 = run(AdcSpec::paper_180nm().expect("spec"));
    let f40 = o40.power.digital_fraction();
    let f180 = o180.power.digital_fraction();
    assert!(
        f180 > f40,
        "digital share must rise with the older node: {f180} vs {f40}"
    );
    for (label, f) in [("40 nm", f40), ("180 nm", f180)] {
        assert!((0.5..0.95).contains(&f), "{label} digital share {f}");
    }
}

#[test]
fn identical_netlist_both_nodes() {
    // §4: "the design migration ... is done automatically" — structurally,
    // the netlist is node-independent.
    let d40 = tdsigma::core::netgen::generate(&AdcSpec::paper_40nm().expect("spec"))
        .expect("netlist")
        .flatten();
    let d180 = tdsigma::core::netgen::generate(&AdcSpec::paper_180nm().expect("spec"))
        .expect("netlist")
        .flatten();
    assert_eq!(d40.len(), d180.len());
    for (a, b) in d40.cells.iter().zip(&d180.cells) {
        assert_eq!(a.path, b.path);
        assert_eq!(a.cell, b.cell);
        assert_eq!(a.connections, b.connections);
    }
}
