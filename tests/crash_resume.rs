//! Kill -9 a sweep mid-run, then resume it.
//!
//! The crash-safety contract under test (see DESIGN.md):
//!   1. a resumed run re-executes only jobs with no `job_finished`
//!      journal record — completed work is absorbed from the cache;
//!   2. the final `sweep.json` is byte-identical to an uninterrupted
//!      run of the same grid;
//!   3. a journal whose final record was torn by the crash replays
//!      cleanly (with a warning) instead of failing.
//!
//! The test drives the real binary: a control run establishes the
//! expected artifact, a second run is SIGKILLed once its journal shows
//! progress, the journal tail is deliberately mangled, and the resume
//! must reconcile and finish.

use std::process::Command;
use std::time::{Duration, Instant};

mod common;
use common::{bin, finished_records, journal_path, metric, sweep_args, SLOW_SAMPLES};

const RUN_ID: &str = "crash-resume-it";

#[test]
fn kill9_mid_sweep_then_resume_reproduces_the_report() {
    let root = std::env::temp_dir().join(format!("tdsigma_crash_resume_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let crashed = root.join("crashed");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&crashed).expect("mkdir crashed");

    // Control: the same grid, uninterrupted, in its own cache/journal.
    let out = Command::new(bin())
        .args(sweep_args(&control, "2", RUN_ID, SLOW_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(
        out.status.success(),
        "control run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // Crash run: one worker serializes the jobs, so killing after the
    // first `job_finished` record is guaranteed to strand later jobs.
    let mut child = Command::new(bin())
        .args(sweep_args(&crashed, "1", RUN_ID, SLOW_SAMPLES))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("crash run spawns");
    let journal = journal_path(&crashed, RUN_ID);
    let deadline = Instant::now() + Duration::from_secs(120);
    let finished_before_kill = loop {
        let done = finished_records(&journal);
        if done >= 1 {
            break done;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("sweep exited ({status:?}) before the test could kill it — raise SLOW_SAMPLES");
        }
        assert!(
            Instant::now() < deadline,
            "no journal progress within 120 s"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    child.kill().expect("SIGKILL");
    let status = child.wait().expect("reap");
    assert!(!status.success(), "killed process cannot report success");
    assert!(
        finished_before_kill < 4,
        "all 4 jobs finished before the kill; nothing was interrupted"
    );

    // A crash can also tear the final journal record mid-append. Mangle
    // the tail so the resume exercises torn-record tolerance too.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("journal exists");
        f.write_all(b"{\"crc64\":\"dead\",\"rec\":{\"t\":\"job_fin")
            .expect("append torn tail");
    }

    // Resume: journaled-complete jobs must come back as cache hits.
    let out = Command::new(bin())
        .args([
            "sweep",
            "--resume",
            RUN_ID,
            "--journal-dir",
            &crashed.join("journal").to_string_lossy(),
            "--cache-dir",
            &crashed.join("cache").to_string_lossy(),
            "--out",
            &crashed.to_string_lossy(),
            "--workers",
            "2",
        ])
        .output()
        .expect("resume run spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "resume failed:\n{stdout}\n{stderr}");
    assert!(
        stderr.contains("torn record"),
        "torn tail must be reported: {stderr}"
    );
    assert!(
        stdout.contains(&format!("resuming run {RUN_ID}")),
        "resume banner missing: {stdout}"
    );

    // No recompute: every job journaled complete before the kill was
    // served from the cache, so at most (4 - finished) executed.
    let executed = metric(&stdout, "executed");
    let hits = metric(&stdout, "cache");
    assert!(
        hits >= finished_before_kill,
        "{hits} cache hits < {finished_before_kill} journaled-complete jobs:\n{stdout}"
    );
    assert!(
        executed <= 4 - finished_before_kill,
        "resume re-executed journaled-complete work \
         ({executed} executed, {finished_before_kill} already finished):\n{stdout}"
    );
    assert_eq!(executed + hits, 4, "every planned job accounted for");

    // Bit-identical artifact: resume converges on the control bytes.
    let resumed = std::fs::read(crashed.join("sweep.json")).expect("resumed artifact");
    assert_eq!(
        resumed,
        expected,
        "resumed sweep.json differs from uninterrupted run:\n{}",
        String::from_utf8_lossy(&resumed)
    );

    let _ = std::fs::remove_dir_all(&root);
}
