//! End-to-end integration: the complete Fig.-9 flow, spanning every crate
//! (tech → netlist → layout → circuit/sim → dsp → core).

use tdsigma::core::{flow::DesignFlow, netgen, spec::AdcSpec};
use tdsigma::layout::{synthesize_naive, AprOptions};
use tdsigma::netlist::verilog;

fn quick_spec() -> AdcSpec {
    let mut spec = AdcSpec::paper_40nm().expect("paper spec");
    spec.steps_per_cycle = 8;
    spec
}

#[test]
fn full_flow_end_to_end() {
    let outcome = DesignFlow::new(quick_spec())
        .with_samples(4096)
        .run()
        .expect("flow succeeds");

    // (1) HDL generation produced the paper's module set.
    for module in [
        "comparator",
        "VCO_cell",
        "buf_cell",
        "pd_VDD",
        "pd_VREFP",
        "ADC_slice",
        "adc_top",
    ] {
        assert!(
            outcome.verilog.contains(&format!("module {module}")),
            "missing {module}"
        );
    }
    // (2) The Verilog is machine-readable (round trip).
    let reparsed = verilog::read_design(&outcome.verilog).expect("parse");
    assert_eq!(reparsed.top_name(), "adc_top");

    // (3) The MSV layout is clean and non-trivial.
    assert!(outcome.layout.checks.is_clean());
    assert!(outcome.layout.placement.len() > 1000);
    assert!(outcome.layout.area_mm2 > 0.0);
    assert!(outcome.layout.routing.total_wirelength_nm > 0);

    // (4) Post-layout simulation converts.
    assert!(
        outcome.analysis.sndr_db > 45.0,
        "quick-look post-layout SNDR: {}",
        outcome.analysis.sndr_db
    );

    // (5) The report is self-consistent.
    let r = &outcome.report;
    assert!((r.enob - (r.sndr_db - 1.76) / 6.02).abs() < 1e-9);
    assert!(r.fom_fj > 0.0);
    assert!(r.power_mw > 0.1 && r.power_mw < 20.0);
}

#[test]
fn post_layout_parasitics_degrade_gracefully() {
    // Post-layout (extracted wire C on the control nodes) must not break
    // the loop — the robustness claim of §2.2.
    let spec = quick_spec();
    let outcome = DesignFlow::new(spec.clone())
        .with_samples(4096)
        .run()
        .expect("flow");
    let mut schematic = tdsigma::core::sim::AdcSimulator::new(spec.clone()).expect("sim");
    let fin = DesignFlow::new(spec.clone())
        .with_samples(4096)
        .input_frequency_hz();
    let cap = schematic.run_tone(fin, 0.79 * spec.full_scale_v(), 4096);
    let schematic_sndr = cap.analyze(spec.bw_hz).sndr_db;
    assert!(
        (outcome.analysis.sndr_db - schematic_sndr).abs() < 8.0,
        "post-layout {} vs schematic {} dB",
        outcome.analysis.sndr_db,
        schematic_sndr
    );
}

#[test]
fn naive_apr_fails_where_msv_flow_succeeds() {
    let spec = quick_spec();
    let flat = netgen::generate(&spec).expect("netlist").flatten();
    let naive = synthesize_naive(&flat, &spec.tech, &AprOptions::default()).expect("naive APR");
    assert!(
        naive.checks.rail_conflicts() > 100,
        "the single-domain flow must short the VCO supplies ({} conflicts)",
        naive.checks.rail_conflicts()
    );
}

#[test]
fn flow_is_deterministic() {
    let a = DesignFlow::new(quick_spec())
        .with_samples(1024)
        .run()
        .expect("flow");
    let b = DesignFlow::new(quick_spec())
        .with_samples(1024)
        .run()
        .expect("flow");
    assert_eq!(a.capture.output, b.capture.output);
    assert_eq!(a.layout.area_mm2, b.layout.area_mm2);
    assert_eq!(a.verilog, b.verilog);
}
