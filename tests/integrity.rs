//! Untrusted-fleet result integrity, against real processes.
//!
//! The contract under test (see DESIGN.md §16): a same-version backend
//! returning plausible-but-wrong report values — intact key, intact
//! frame, self-consistent attestation — is caught by sampled redundant
//! verification, integrity-quarantined for the rest of the run, and the
//! final `sweep.json` is byte-identical to a purely local run:
//!
//!   1. a fleet with one lying serve child (armed via the hidden
//!      `TDSIGMA_LYING_PERMILLE` hook) completes under `--verify-all`;
//!      the liar is quarantined (stderr warning, `DEGRADED: integrity`
//!      on the dispatch summary), the verification outcomes are
//!      journaled, and the artifact matches the local control bytes;
//!   2. with verification off (`--verify-sample 0`, the default) the
//!      sweep makes zero extra remote calls — counter-asserted from
//!      both sides of the wire (dispatch summary and serve health).
//!
//! Every scenario drives the real binary end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command;
use std::time::Duration;

mod common;
use common::{
    bin, journal_path, metric, spawn_serve, spawn_serve_with_env, sweep_args, wait_for_ready,
    FAST_SAMPLES,
};

/// One `{"cmd":"health"}` round trip against a live backend.
fn health_line(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for health");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    stream
        .write_all(b"{\"cmd\":\"health\"}\n")
        .expect("send health");
    let mut response = String::new();
    reader.read_line(&mut response).expect("health response");
    response
}

#[test]
fn lying_backend_is_caught_quarantined_and_bytes_match_local() {
    let run_id = "integrity-liar-it";
    let root = std::env::temp_dir().join(format!("tdsigma_integrity_liar_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    // Control: the grid computed locally — these bytes are the truth.
    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(out.status.success(), "control run failed");
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // One honest backend, one that silently perturbs every report value
    // after compute. Same binary, same fingerprint, valid attestation:
    // nothing at the wire level can tell them apart.
    let (mut good, addr_good) = spawn_serve(&root.join("serve_good"), 1);
    let (mut bad, addr_bad) = spawn_serve_with_env(
        &root.join("serve_bad"),
        1,
        &[("TDSIGMA_LYING_PERMILLE", "1000")],
    );
    wait_for_ready(&addr_good, Duration::from_secs(30));
    wait_for_ready(&addr_bad, Duration::from_secs(30));

    let mut args = sweep_args(
        &dist,
        &format!("{addr_good},{addr_bad}"),
        run_id,
        FAST_SAMPLES,
    );
    args.push("--verify-all".into());
    let out = Command::new(bin())
        .args(&args)
        .output()
        .expect("verified fleet sweep spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "a sweep must survive a lying backend:\n{stderr}"
    );
    assert!(
        stderr.contains(&format!("backend {addr_bad} integrity-quarantined")),
        "the quarantine must be warned about on stderr: {stderr}"
    );
    assert!(
        stdout.contains("DEGRADED: integrity"),
        "the dispatch summary must flag the lying backend: {stdout}"
    );
    assert!(
        !stderr.contains(&format!("backend {addr_good} integrity-quarantined")),
        "the honest backend must keep its standing: {stderr}"
    );

    // The verified bytes won every disagreement: the artifact matches
    // the local control run exactly.
    let produced = std::fs::read(dist.join("sweep.json")).expect("verified fleet artifact");
    assert_eq!(
        produced,
        expected,
        "verified-fleet sweep.json differs from the local run:\n{}",
        String::from_utf8_lossy(&produced)
    );

    // Verification outcomes are journaled, so a --resume of this run
    // would not re-verify what this attempt already proved.
    let journal = std::fs::read_to_string(journal_path(&dist, run_id)).expect("journal readable");
    assert!(
        journal.contains("\"t\":\"job_verified\""),
        "verification outcomes must be journaled:\n{journal}"
    );

    good.kill().expect("stop good backend");
    let _ = good.wait();
    bad.kill().expect("stop bad backend");
    let _ = bad.wait();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn verify_sample_zero_makes_no_extra_remote_calls() {
    let run_id = "integrity-off-it";
    let root = std::env::temp_dir().join(format!("tdsigma_integrity_off_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(out.status.success(), "control run failed");
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    let (mut serve, addr) = spawn_serve(&root.join("serve"), 2);
    wait_for_ready(&addr, Duration::from_secs(30));

    let mut args = sweep_args(&dist, &addr, run_id, FAST_SAMPLES);
    args.extend(["--verify-sample".into(), "0".into()]);
    let out = Command::new(bin())
        .args(&args)
        .output()
        .expect("unverified sweep spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "sweep failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Counter-asserted from the dispatching side: exactly one dispatch
    // per grid job, nothing re-sent for verification.
    assert_eq!(
        metric(&stdout, "dispatched"),
        4,
        "verification off must add zero dispatches: {stdout}"
    );
    assert!(
        !stdout.contains("DEGRADED"),
        "an honest fleet with verification off is not degraded: {stdout}"
    );

    // And from the serving side: the backend saw exactly the grid.
    let health = health_line(&addr);
    assert!(
        health.contains("\"served_jobs\":4"),
        "the backend must have served exactly 4 jobs: {health}"
    );

    let produced = std::fs::read(dist.join("sweep.json")).expect("unverified artifact");
    assert_eq!(
        produced, expected,
        "remote sweep.json differs from the local run"
    );

    serve.kill().expect("stop backend");
    let _ = serve.wait();
    let _ = std::fs::remove_dir_all(&root);
}
