//! End-to-end tests for `tdsigma optimize`: the determinism and
//! crash-recovery contracts of the design-space optimizer, driven
//! through the real binary.
//!
//! Contracts under test (see DESIGN.md §12):
//!   1. same seed + config → byte-identical `optimize.json`, even from
//!      a cold cache in a different directory;
//!   2. SIGKILL mid-search, then `--resume <run-id>` → the final
//!      artifact is byte-identical to an uninterrupted run, and the
//!      re-run absorbs completed evaluations as cache hits;
//!   3. `--dry-run` prints the generation-0 plan and executes nothing.

use std::process::Command;
use std::time::{Duration, Instant};

mod common;
use common::{bin, finished_records, journal_path, metric, optimize_args};

/// Fast enough for a 16-evaluation budget to finish quickly.
const FAST: &str = "2048";
/// Slow enough that a poll loop catches the run mid-flight.
const SLOW: &str = "65536";

fn run_ok(args: &[String], dir: &std::path::Path) -> String {
    let out = Command::new(bin())
        .current_dir(dir)
        .args(args)
        .output()
        .expect("tdsigma spawns");
    assert!(
        out.status.success(),
        "optimize failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn same_seed_is_byte_identical_across_directories() {
    let root = std::env::temp_dir().join(format!("tdsigma_opt_det_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let a = root.join("a");
    let b = root.join("b");
    std::fs::create_dir_all(&a).expect("mkdir a");
    std::fs::create_dir_all(&b).expect("mkdir b");

    run_ok(&optimize_args(&a, "det", FAST), &a);
    run_ok(&optimize_args(&b, "det", FAST), &b);

    let art_a = std::fs::read(a.join("optimize.json")).expect("artifact a");
    let art_b = std::fs::read(b.join("optimize.json")).expect("artifact b");
    assert_eq!(
        art_a, art_b,
        "two cold runs of the same seed must write identical optimize.json"
    );
    // The artifact records the full generation history and the best spec.
    let text = String::from_utf8(art_a).expect("utf8");
    for field in ["\"generations\"", "\"best\"", "\"config\"", "\"candidate\""] {
        assert!(text.contains(field), "artifact missing {field}: {text}");
    }

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill9_mid_optimize_then_resume_reproduces_the_artifact() {
    let root = std::env::temp_dir().join(format!("tdsigma_opt_crash_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let crashed = root.join("crashed");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&crashed).expect("mkdir crashed");

    // Control: uninterrupted run of the same config.
    run_ok(&optimize_args(&control, "opt-crash", SLOW), &control);
    let expected = std::fs::read(control.join("optimize.json")).expect("control artifact");

    // Crash run: SIGKILL once the journal shows at least one finished
    // evaluation (and the budget of 16 guarantees more remain).
    let mut child = Command::new(bin())
        .current_dir(&crashed)
        .args(optimize_args(&crashed, "opt-crash", SLOW))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("crash run spawns");
    let journal = journal_path(&crashed, "opt-crash");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if finished_records(&journal) >= 1 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            panic!("optimize exited ({status:?}) before the kill — raise SLOW");
        }
        assert!(
            Instant::now() < deadline,
            "no journal progress within 120 s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL");
    let status = child.wait().expect("reap");
    assert!(!status.success(), "killed process cannot report success");
    assert!(
        !crashed.join("optimize.json").exists(),
        "the artifact must not exist before the run completes"
    );

    // Resume: the persisted config re-runs; journaled-complete
    // evaluations come back as cache hits.
    let resume_args: Vec<String> = ["optimize", "--resume", "opt-crash"]
        .iter()
        .map(ToString::to_string)
        .chain([
            "--journal-dir".into(),
            crashed.join("journal").to_string_lossy().into_owned(),
            "--cache-dir".into(),
            crashed.join("cache").to_string_lossy().into_owned(),
            "--out".into(),
            crashed.to_string_lossy().into_owned(),
        ])
        .collect();
    let stdout = run_ok(&resume_args, &crashed);
    assert!(
        stdout.contains("resuming optimize opt-crash"),
        "resume banner missing:\n{stdout}"
    );
    let hits: usize = stdout
        .lines()
        .filter(|l| l.contains("cache hit(s)"))
        .map(|l| metric(l, "cache"))
        .sum();
    assert!(
        hits >= 1,
        "resume must absorb completed evaluations from the cache:\n{stdout}"
    );

    let resumed = std::fs::read(crashed.join("optimize.json")).expect("resumed artifact");
    assert_eq!(
        resumed, expected,
        "resumed artifact must be byte-identical to the uninterrupted run"
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dry_run_previews_without_executing() {
    let root = std::env::temp_dir().join(format!("tdsigma_opt_dry_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir");

    let mut args = optimize_args(&root, "dry", FAST);
    args.push("--dry-run".into());
    let stdout = run_ok(&args, &root);
    assert!(stdout.contains("dry run: nothing executed"), "{stdout}");
    assert!(stdout.contains("to execute"), "{stdout}");
    // Nothing ran: no journal, no artifact, no cache entries.
    assert!(
        !journal_path(&root, "dry").exists(),
        "dry run wrote a journal"
    );
    assert!(
        !root.join("optimize.json").exists(),
        "dry run wrote an artifact"
    );

    // Sweep --dry-run shares the same preview path.
    let sweep: Vec<String> = [
        "sweep",
        "--nodes",
        "40",
        "--slices",
        "1,2",
        "--samples",
        FAST,
        "--dry-run",
    ]
    .iter()
    .map(ToString::to_string)
    .chain([
        "--journal-dir".into(),
        root.join("journal").to_string_lossy().into_owned(),
        "--cache-dir".into(),
        root.join("cache").to_string_lossy().into_owned(),
        "--out".into(),
        root.to_string_lossy().into_owned(),
    ])
    .collect();
    let stdout = run_ok(&sweep, &root);
    assert!(
        stdout.contains("2 job(s): 2 unique") && stdout.contains("2 to execute"),
        "{stdout}"
    );
    assert!(
        !root.join("sweep.json").exists(),
        "dry sweep wrote an artifact"
    );

    let _ = std::fs::remove_dir_all(&root);
}
