//! Engine-fingerprint integrity, against real processes.
//!
//! The version-skew contract under test (see DESIGN.md §15): results
//! produced by one engine build are never silently mixed with another's.
//!
//!   1. a warm cache written by a *different* engine fingerprint yields
//!      zero replayed reports — every foreign artifact is demoted to the
//!      `stale/` tier (counted on the resilience line), the grid
//!      re-executes, and the final `sweep.json` is byte-identical to a
//!      fresh run; `tdsigma cache stats` shows the tiers and `tdsigma
//!      cache scrub` prunes them;
//!   2. `--resume` of a journal planned by a different engine fails
//!      loudly, and `--resume-force` downgrades that to a warning that
//!      re-executes everything;
//!   3. `--resume --no-cache` re-executes every job instead of
//!      reconciling against cache artifacts it will not read (the
//!      warm-cache stale-replay regression);
//!   4. a sweep over a fleet with one mismatched-fingerprint backend
//!      excludes it (`DEGRADED: version_skew`), completes on the
//!      matching backend, and still matches local bytes.
//!
//! Every scenario drives the real binary; foreign engines are simulated
//! with the `TDSIGMA_FINGERPRINT` override the fingerprint module honors
//! exactly for this purpose.

use std::process::Command;
use std::time::Duration;

mod common;
use common::{
    bin, journal_path, metric, spawn_serve, spawn_serve_with_env, sweep_args, wait_for_ready,
    FAST_SAMPLES,
};

/// A syntactically plausible but impossible fingerprint: the real one is
/// 16 lowercase hex digits of an FNV hash, which never collides with a
/// fixed vanity constant.
const FOREIGN_FP: &str = "aaaaaaaaaaaaaaaa";

/// Resume invocation rooted at `base` — the grid comes from the
/// journal, so only engine/state flags are passed.
fn resume_args(base: &std::path::Path, run_id: &str, extra: &[&str]) -> Vec<String> {
    ["sweep", "--resume", run_id, "--workers", "2"]
        .iter()
        .map(ToString::to_string)
        .chain(extra.iter().map(ToString::to_string))
        .chain([
            "--journal-dir".into(),
            base.join("journal").to_string_lossy().into_owned(),
            "--cache-dir".into(),
            base.join("cache").to_string_lossy().into_owned(),
            "--out".into(),
            base.to_string_lossy().into_owned(),
        ])
        .collect()
}

/// Pulls the count off a `label: N` row of `tdsigma cache stats` output.
fn stats_row(stdout: &str, label: &str) -> usize {
    for line in stdout.lines() {
        if let Some(rest) = line.trim_start().strip_prefix(label) {
            if let Ok(n) = rest.trim().parse() {
                return n;
            }
        }
    }
    panic!("no {label:?} row in cache stats output:\n{stdout}");
}

#[test]
fn foreign_engine_warm_cache_is_demoted_never_replayed_and_scrubbable() {
    let root = std::env::temp_dir().join(format!("tdsigma_vskew_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    // Warm `dist`'s cache as a foreign engine: every artifact is
    // stamped with the override fingerprint instead of the real one.
    let out = Command::new(bin())
        .args(sweep_args(&dist, "2", "vskew-warm-it", FAST_SAMPLES))
        .env("TDSIGMA_FINGERPRINT", FOREIGN_FP)
        .output()
        .expect("warming run spawns");
    assert!(
        out.status.success(),
        "warming run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        metric(&String::from_utf8_lossy(&out.stdout), "executed"),
        4,
        "warming run executes the whole grid"
    );

    // Control: the same grid with a cold cache under the real engine.
    let run_id = "vskew-cache-it";
    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(out.status.success(), "control run failed");
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // The real engine over the foreign warm cache: zero replayed
    // reports, every foreign artifact demoted and counted as stale.
    let out = Command::new(bin())
        .args(sweep_args(&dist, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("skewed-cache run spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "skewed-cache run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        metric(&stdout, "cache"),
        0,
        "a foreign warm cache must never produce a hit: {stdout}"
    );
    assert_eq!(metric(&stdout, "executed"), 4, "all jobs re-execute");
    assert_eq!(
        metric(&stdout, "stale"),
        4,
        "each demoted artifact is counted on the resilience line: {stdout}"
    );
    let produced = std::fs::read(dist.join("sweep.json")).expect("skewed-cache artifact");
    assert_eq!(
        produced,
        expected,
        "re-executed sweep.json differs from the fresh run:\n{}",
        String::from_utf8_lossy(&produced)
    );

    // `cache stats` sees 4 fresh re-executed artifacts over 4 demoted
    // stale ones; `cache scrub` prunes the stale tier and keeps fresh.
    let cache_dir = dist.join("cache").to_string_lossy().into_owned();
    let out = Command::new(bin())
        .args(["cache", "stats", "--cache-dir", &cache_dir])
        .output()
        .expect("cache stats spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "cache stats failed");
    assert_eq!(stats_row(&stdout, "fresh:"), 4, "{stdout}");
    assert_eq!(stats_row(&stdout, "stale tier:"), 4, "{stdout}");

    let out = Command::new(bin())
        .args(["cache", "scrub", "--cache-dir", &cache_dir])
        .output()
        .expect("cache scrub spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "cache scrub failed");
    assert!(
        stdout.contains("4 stale") && stdout.contains("kept 4 fresh"),
        "scrub must report what it pruned and kept: {stdout}"
    );

    let out = Command::new(bin())
        .args(["cache", "stats", "--cache-dir", &cache_dir])
        .output()
        .expect("cache stats spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stats_row(&stdout, "fresh:"), 4, "{stdout}");
    assert_eq!(
        stats_row(&stdout, "stale tier:"),
        0,
        "scrub must empty the stale tier: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_across_an_engine_change_fails_loudly_unless_forced() {
    let run_id = "vskew-resume-force-it";
    let root = std::env::temp_dir().join(format!("tdsigma_vskew_force_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let base = root.join("run");
    std::fs::create_dir_all(&base).expect("mkdir base");

    // Plan and finish the run as a foreign engine: journal and cache
    // both carry the override fingerprint.
    let out = Command::new(bin())
        .args(sweep_args(&base, "2", run_id, FAST_SAMPLES))
        .env("TDSIGMA_FINGERPRINT", FOREIGN_FP)
        .output()
        .expect("foreign run spawns");
    assert!(out.status.success(), "foreign run failed");
    assert!(
        journal_path(&base, run_id).exists(),
        "a clean sweep keeps a recent journal window for --resume"
    );

    // The real engine refuses the resume: the journal's completion
    // claims point at artifacts it will demote, not replay.
    let out = Command::new(bin())
        .args(resume_args(&base, run_id, &[]))
        .output()
        .expect("refused resume spawns");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        !out.status.success(),
        "resume across an engine change must fail without --resume-force"
    );
    assert!(
        stderr.contains(&format!("planned by engine {FOREIGN_FP}")),
        "the error must name the planning engine: {stderr}"
    );
    assert!(
        stderr.contains("--resume-force"),
        "the error must point at the escape hatch: {stderr}"
    );

    // --resume-force re-executes everything under the current engine.
    let out = Command::new(bin())
        .args(resume_args(&base, run_id, &["--resume-force"]))
        .output()
        .expect("forced resume spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "forced resume failed: {stderr}");
    assert!(
        stderr.contains("across an engine change"),
        "the force path must still warn: {stderr}"
    );
    assert_eq!(
        metric(&stdout, "cache"),
        0,
        "no foreign artifact may be replayed: {stdout}"
    );
    assert_eq!(metric(&stdout, "executed"), 4, "{stdout}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resume_with_no_cache_re_executes_instead_of_reconciling_the_journal() {
    let run_id = "vskew-nocache-it";
    let root = std::env::temp_dir().join(format!("tdsigma_vskew_nocache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let base = root.join("run");
    std::fs::create_dir_all(&base).expect("mkdir base");

    // A complete run under the current engine: warm cache, journal with
    // every job finished.
    let out = Command::new(bin())
        .args(sweep_args(&base, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("first run spawns");
    assert!(out.status.success(), "first run failed");
    let expected = std::fs::read(base.join("sweep.json")).expect("first artifact");

    // Resuming with --no-cache must not count journaled completions as
    // done — their evidence is cache artifacts this run will not read.
    let out = Command::new(bin())
        .args(resume_args(&base, run_id, &["--no-cache"]))
        .output()
        .expect("no-cache resume spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "no-cache resume failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("cache disabled: re-executing all 4 jobs"),
        "the re-execution must be announced: {stdout}"
    );
    assert_eq!(
        metric(&stdout, "cache"),
        0,
        "no warm artifact may be replayed under --no-cache: {stdout}"
    );
    assert_eq!(metric(&stdout, "executed"), 4, "{stdout}");
    assert!(
        journal_path(&base, run_id).exists(),
        "--no-cache must not let the journal auto-GC reconcile the run away"
    );
    let produced = std::fs::read(base.join("sweep.json")).expect("resumed artifact");
    assert_eq!(
        produced, expected,
        "re-execution must reproduce the original bytes"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn mismatched_fingerprint_backend_is_excluded_and_bytes_match_local() {
    let run_id = "vskew-backend-it";
    let root = std::env::temp_dir().join(format!("tdsigma_vskew_backend_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(out.status.success(), "control run failed");
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // One matching backend, one running as a "different binary".
    let (mut good, addr_good) = spawn_serve(&root.join("serve_good"), 1);
    let (mut bad, addr_bad) = spawn_serve_with_env(
        &root.join("serve_bad"),
        1,
        &[("TDSIGMA_FINGERPRINT", FOREIGN_FP)],
    );
    wait_for_ready(&addr_good, Duration::from_secs(30));
    wait_for_ready(&addr_bad, Duration::from_secs(30));

    let out = Command::new(bin())
        .args(sweep_args(
            &dist,
            &format!("{addr_good},{addr_bad}"),
            run_id,
            FAST_SAMPLES,
        ))
        .output()
        .expect("mixed-fleet sweep spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "a sweep must survive a mismatched backend:\n{stderr}"
    );
    assert!(
        stderr.contains(&format!(
            "backend {addr_bad} excluded: engine fingerprint {FOREIGN_FP}"
        )),
        "the exclusion must be warned about on stderr: {stderr}"
    );
    assert!(
        stdout.contains("DEGRADED: version_skew"),
        "the dispatch summary must flag the skew: {stdout}"
    );
    let produced = std::fs::read(dist.join("sweep.json")).expect("mixed-fleet artifact");
    assert_eq!(
        produced,
        expected,
        "mixed-fleet sweep.json differs from the local run:\n{}",
        String::from_utf8_lossy(&produced)
    );

    good.kill().expect("stop good backend");
    let _ = good.wait();
    bad.kill().expect("stop bad backend");
    let _ = bad.wait();
    let _ = std::fs::remove_dir_all(&root);
}
