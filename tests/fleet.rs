//! Fleet supervision, against real processes.
//!
//! The self-healing contract under test (see DESIGN.md §13): `tdsigma
//! fleet` spawns N real serve children on stable addresses, and
//!
//!   1. a child SIGKILLed mid-sweep is restarted on its old address
//!      without operator intervention, the distributed sweep completes,
//!      and its `sweep.json` is byte-identical to a single-machine run
//!      of the same grid — supervision changes who serves, never what
//!      is served;
//!   2. SIGTERM to the supervisor performs a graceful rolling drain:
//!      every child is asked over the wire, stragglers are killed, and
//!      the supervisor exits 0.
//!
//! The whole scenario drives the real binary: a real `tdsigma fleet`
//! parent, real serve children over TCP, a real `tdsigma sweep
//! --workers addr,addr` client, and real signals.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

mod common;
use common::{
    bin, finished_records, journal_path, sweep_args, wait_for_ready, FAST_SAMPLES, SLOW_SAMPLES,
};

/// A supervised fleet process: the parsed child roster plus a live
/// transcript of everything the supervisor (and its children) printed.
struct FleetUnderTest {
    child: std::process::Child,
    /// (pid, addr) per slot, from the initial spawn announcements.
    roster: Vec<(u32, String)>,
    transcript: Arc<Mutex<String>>,
}

impl FleetUnderTest {
    /// Spawns `tdsigma fleet` and blocks until all `children` slots have
    /// announced `fleet: child I pid P serving on ADDR`.
    fn spawn(children: usize, cache_dir: &std::path::Path, extra: &[&str]) -> FleetUnderTest {
        let mut child = Command::new(bin())
            .args([
                "fleet",
                "--children",
                &children.to_string(),
                "--workers",
                "1",
                "--health-interval-ms",
                "100",
                "--cache-dir",
                &cache_dir.to_string_lossy(),
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("fleet spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = BufReader::new(stdout);
        let transcript = Arc::new(Mutex::new(String::new()));
        let mut roster = vec![None; children];
        let mut line = String::new();
        while roster.iter().any(Option::is_none) {
            line.clear();
            let n = reader.read_line(&mut line).expect("fleet stdout readable");
            assert!(n > 0, "fleet exited before announcing all children");
            transcript.lock().unwrap().push_str(&line);
            if let Some((slot, pid, addr)) = parse_announcement(&line) {
                roster[slot] = Some((pid, addr));
            }
        }
        // Keep draining in the background so the fleet never blocks on a
        // full pipe; later announcements (restarts) land in the
        // transcript for the assertions below.
        let sink = Arc::clone(&transcript);
        std::thread::spawn(move || {
            let mut line = String::new();
            while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                sink.lock().unwrap().push_str(&line);
                line.clear();
            }
        });
        FleetUnderTest {
            child,
            roster: roster.into_iter().map(Option::unwrap).collect(),
            transcript,
        }
    }

    fn addrs(&self) -> Vec<String> {
        self.roster.iter().map(|(_, addr)| addr.clone()).collect()
    }

    fn transcript(&self) -> String {
        self.transcript.lock().unwrap().clone()
    }

    /// Blocks until the transcript satisfies `pred`, or panics.
    fn wait_for(&self, what: &str, timeout: Duration, pred: impl Fn(&str) -> bool) {
        let deadline = Instant::now() + timeout;
        while !pred(&self.transcript()) {
            assert!(
                Instant::now() < deadline,
                "fleet never printed {what:?} within {timeout:?}; transcript:\n{}",
                self.transcript()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Parses `fleet: child I pid P serving on ADDR` announcements.
fn parse_announcement(line: &str) -> Option<(usize, u32, String)> {
    let rest = line.trim().strip_prefix("fleet: child ")?;
    let mut tokens = rest.split_whitespace();
    let slot = tokens.next()?.parse().ok()?;
    if tokens.next()? != "pid" {
        return None;
    }
    let pid = tokens.next()?.parse().ok()?;
    if (tokens.next()?, tokens.next()?) != ("serving", "on") {
        return None;
    }
    Some((slot, pid, tokens.next()?.to_string()))
}

fn signal(pid: u32, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &pid.to_string()])
        .status()
        .expect("kill spawns");
    assert!(status.success(), "kill {sig} {pid} failed");
}

#[test]
fn kill9ed_fleet_child_is_restarted_and_sweep_bytes_match_local() {
    let run_id = "fleet-kill-it";
    let root = std::env::temp_dir().join(format!("tdsigma_fleet_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    // Control: the same grid on the local pool, same run id.
    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, SLOW_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(
        out.status.success(),
        "control run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // A two-child fleet; the sweep round-robins across its addresses.
    let mut fleet = FleetUnderTest::spawn(2, &root.join("fleet_cache"), &[]);
    let addrs = fleet.addrs();
    for addr in &addrs {
        wait_for_ready(addr, Duration::from_secs(30));
    }

    let mut sweep = Command::new(bin())
        .args(sweep_args(&dist, &addrs.join(","), run_id, SLOW_SAMPLES))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("distributed sweep spawns");

    // SIGKILL child 0 once the journal shows progress but before the
    // grid is done — the supervisor must notice and respawn it on the
    // same address while the sweep fails pending work over.
    let journal = journal_path(&dist, run_id);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done = finished_records(&journal);
        if done >= 1 {
            assert!(
                done < 4,
                "all 4 jobs finished before the kill; raise SLOW_SAMPLES"
            );
            break;
        }
        if let Some(status) = sweep.try_wait().expect("try_wait") {
            panic!("sweep exited ({status:?}) before the test could kill a child");
        }
        assert!(
            Instant::now() < deadline,
            "no journal progress within 120 s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let (victim_pid, victim_addr) = fleet.roster[0].clone();
    signal(victim_pid, "-9");

    // The supervisor announces the restart and respawns the slot on its
    // old address with a fresh pid.
    fleet.wait_for("a restart announcement", Duration::from_secs(30), |t| {
        t.contains("fleet: restarting child 0")
    });
    fleet.wait_for("the respawn", Duration::from_secs(30), |t| {
        t.lines()
            .filter_map(parse_announcement)
            .any(|(slot, pid, addr)| slot == 0 && pid != victim_pid && addr == victim_addr)
    });
    wait_for_ready(&victim_addr, Duration::from_secs(30));

    // The sweep finishes on its own, bytes identical to the local run.
    let status = sweep.wait().expect("sweep reaped");
    assert!(
        status.success(),
        "sweep must survive a child SIGKILL under supervision, got {status:?}"
    );
    let produced = std::fs::read(dist.join("sweep.json")).expect("distributed artifact");
    assert_eq!(
        produced,
        expected,
        "supervised run's sweep.json differs from the local run:\n{}",
        String::from_utf8_lossy(&produced)
    );

    // SIGTERM the supervisor: graceful rolling drain, exit 0.
    signal(fleet.child.id(), "-TERM");
    let status = fleet.child.wait().expect("fleet reaped");
    assert!(
        status.success(),
        "fleet must drain cleanly on SIGTERM, got {status:?}; transcript:\n{}",
        fleet.transcript()
    );
    let transcript = fleet.transcript();
    assert!(
        transcript.contains("fleet: drained"),
        "drain must be announced; transcript:\n{transcript}"
    );
    for addr in &addrs {
        assert!(
            std::net::TcpStream::connect(addr).is_err(),
            "child on {addr} must be gone after the drain"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_serves_a_sweep_and_drains_on_sigterm() {
    let run_id = "fleet-drain-it";
    let root = std::env::temp_dir().join(format!("tdsigma_fleet_drain_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dist = root.join("dist");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    let fleet = FleetUnderTest::spawn(2, &root.join("fleet_cache"), &[]);
    let addrs = fleet.addrs();
    for addr in &addrs {
        wait_for_ready(addr, Duration::from_secs(30));
    }

    let out = Command::new(bin())
        .args(sweep_args(&dist, &addrs.join(","), run_id, FAST_SAMPLES))
        .output()
        .expect("sweep spawns");
    assert!(
        out.status.success(),
        "sweep against the fleet failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("DEGRADED"),
        "a healthy fleet must serve the whole sweep: {stdout}"
    );

    let mut fleet = fleet;
    signal(fleet.child.id(), "-TERM");
    let status = fleet.child.wait().expect("fleet reaped");
    assert!(
        status.success(),
        "fleet must exit 0 on SIGTERM; transcript:\n{}",
        fleet.transcript()
    );
    let transcript = fleet.transcript();
    for i in 0..2 {
        assert!(
            transcript.contains(&format!("fleet: child {i} on ")),
            "each child's drain must be announced; transcript:\n{transcript}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn fleet_refuses_to_adopt_a_child_with_a_foreign_fingerprint() {
    let root = std::env::temp_dir().join(format!("tdsigma_fleet_skew_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("mkdir root");

    // A real serve child whose binary "changed under" the supervisor:
    // the shell wrapper overrides the child's fingerprint while the
    // in-process supervisor keeps the real one. The adoption check must
    // kill it, abandon the slot, and — with every slot abandoned — make
    // the supervisor give up with exit code 1 instead of letting a
    // mismatched engine serve.
    let config = tdsigma::jobs::FleetConfig {
        program: "/bin/sh".into(),
        child_args: vec![
            "-c".into(),
            format!(
                "TDSIGMA_FINGERPRINT=cafef00ddeadbeef exec '{}' serve --addr {{addr}} \
                 --workers 1 --cache-dir '{}'",
                bin(),
                root.join("cache").display()
            ),
        ],
        children: 1,
        health_interval_ms: 50,
        // Give the child ample time to bind before a probe miss could
        // count it as stalled — only the fingerprint may fail it here.
        stall_after_misses: 200,
        ..tdsigma::jobs::FleetConfig::default()
    };
    let skew_before = tdsigma::obs::counter("fleet.version_skew").get();
    let mut fleet = tdsigma::jobs::Fleet::spawn(config).expect("spawn fleet");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (tx, rx) = std::sync::mpsc::channel();
    let run_stop = Arc::clone(&stop);
    std::thread::spawn(move || {
        let _ = tx.send(fleet.run(&run_stop));
    });
    let code = match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(code) => code,
        Err(_) => {
            stop.store(true, std::sync::atomic::Ordering::SeqCst);
            panic!("supervisor kept running instead of refusing the mismatched child");
        }
    };
    assert_eq!(code, 1, "an all-refused fleet must fail loudly");
    assert!(
        tdsigma::obs::counter("fleet.version_skew").get() > skew_before,
        "the refusal must be counted on fleet.version_skew"
    );
    let _ = std::fs::remove_dir_all(&root);
}
