//! Smoke tests for the `tdsigma` CLI binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_tdsigma")
}

#[test]
fn help_prints_usage() {
    let out = Command::new(bin()).arg("help").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("design"));
}

#[test]
fn help_flag_spellings_all_work() {
    for flag in ["--help", "-h"] {
        let out = Command::new(bin()).arg(flag).output().expect("runs");
        assert!(out.status.success(), "{flag}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("USAGE"), "{flag}");
        assert!(text.contains("sweep"), "{flag}");
        assert!(text.contains("serve"), "{flag}");
    }
}

#[test]
fn version_flag_prints_version() {
    for flag in ["--version", "-V", "version"] {
        let out = Command::new(bin()).arg(flag).output().expect("runs");
        assert!(out.status.success(), "{flag}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(env!("CARGO_PKG_VERSION")), "{flag}: {text}");
    }
}

#[test]
fn sweep_runs_grid_and_writes_artifact() {
    let dir = std::env::temp_dir().join("tdsigma_cli_sweep_test");
    let _ = std::fs::remove_dir_all(&dir);
    let journal_dir = dir.join("journal");
    let out = Command::new(bin())
        .args([
            "sweep",
            "--nodes",
            "40",
            "--slices",
            "1,2",
            "--samples",
            "2048",
            "--workers",
            "2",
            "--no-cache",
            "--run-id",
            "cli-smoke",
            "--journal-dir",
            journal_dir.to_str().expect("utf8 temp path"),
            "--out",
            dir.to_str().expect("utf8 temp path"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SNDR[dB]"), "table header missing: {text}");
    assert!(text.contains("2 jobs"), "metrics missing: {text}");
    let json = std::fs::read_to_string(dir.join("sweep.json")).expect("artifact");
    assert!(
        json.trim_start().starts_with('{'),
        "object artifact: {json}"
    );
    assert!(json.contains("\"run_id\":\"cli-smoke\""), "{json}");
    assert!(json.contains("\"reports\""), "{json}");
    assert!(json.contains("\"sndr_db\""));
    assert!(
        journal_dir.join("cli-smoke.jsonl").exists(),
        "sweep must write its journal"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flag_is_rejected_with_the_supported_list() {
    for (cmd, flag) in [
        ("sweep", "--nodez"),
        ("design", "--mode"),
        ("serve", "--port"),
    ] {
        let out = Command::new(bin())
            .args([cmd, flag, "40"])
            .output()
            .expect("runs");
        assert!(!out.status.success(), "{cmd} {flag} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown flag"), "{cmd} {flag}: {err}");
        assert!(err.contains(flag), "{cmd} {flag}: {err}");
    }
}

#[test]
fn nodes_lists_all_supported() {
    let out = Command::new(bin()).arg("nodes").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for node in ["500 nm", "180 nm", "40 nm", "22 nm"] {
        assert!(text.contains(node), "missing {node}");
    }
}

#[test]
fn unknown_command_fails() {
    let out = Command::new(bin())
        .arg("frobnicate")
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn design_rejects_bad_flags() {
    let out = Command::new(bin())
        .args(["design", "--node", "seven"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--node"), "{err}");

    let out = Command::new(bin())
        .args(["design", "--node"])
        .output()
        .expect("runs");
    assert!(!out.status.success());

    let out = Command::new(bin())
        .args(["design", "--node", "41"])
        .output()
        .expect("runs");
    assert!(!out.status.success(), "41 nm is not a supported node");
}

#[test]
fn design_produces_all_artifacts() {
    let dir = std::env::temp_dir().join("tdsigma_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = Command::new(bin())
        .args([
            "design",
            "--samples",
            "2048",
            "--out",
            dir.to_str().expect("utf8 temp path"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for artifact in [
        "adc_top.v",
        "library.lef",
        "adc_top.fp",
        "adc_top.def",
        "adc_top.gds.txt",
        "layout.svg",
        "spectrum.csv",
        "report.json",
    ] {
        assert!(dir.join(artifact).exists(), "missing {artifact}");
    }
    let json = std::fs::read_to_string(dir.join("report.json")).expect("readable");
    assert!(json.contains("\"sndr_db\""));
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    let _ = std::fs::remove_dir_all(&dir);
}
