//! Process-driving helpers shared by the crash-resume and failover
//! integration tests: spawning the real `tdsigma` binary, watching its
//! journal for progress, and parsing its metrics line.
#![allow(dead_code)] // each test binary uses its own subset

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

pub fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_tdsigma")
}

/// Large enough that each job of the standard 2x2 grid runs for over a
/// second in an unoptimized build, so a poll loop always catches a
/// sweep mid-flight.
pub const SLOW_SAMPLES: &str = "262144";

/// Small enough that a 2x2 grid finishes in well under a second — for
/// tests that only care about the final artifact, not mid-run timing.
pub const FAST_SAMPLES: &str = "8192";

/// Common sweep arguments rooted at `base`: a 2x2 grid with all state
/// (cache, journal, artifact) confined to that directory. `workers`
/// takes anything the CLI accepts — a thread count or a backend list.
pub fn sweep_args(base: &Path, workers: &str, run_id: &str, samples: &str) -> Vec<String> {
    [
        "sweep",
        "--nodes",
        "40,180",
        "--slices",
        "1,2",
        "--samples",
        samples,
        "--workers",
        workers,
        "--run-id",
        run_id,
    ]
    .iter()
    .map(ToString::to_string)
    .chain([
        "--journal-dir".into(),
        base.join("journal").to_string_lossy().into_owned(),
        "--cache-dir".into(),
        base.join("cache").to_string_lossy().into_owned(),
        "--out".into(),
        base.to_string_lossy().into_owned(),
    ])
    .collect()
}

/// Common optimize arguments rooted at `base`: a small sim-kind CMA run
/// (fast, deterministic) with all state confined to that directory.
pub fn optimize_args(base: &Path, run_id: &str, samples: &str) -> Vec<String> {
    [
        "optimize",
        "--kind",
        "sim",
        "--nodes",
        "40",
        "--budget",
        "16",
        "--samples",
        samples,
        "--seed",
        "7",
        "--run-id",
        run_id,
    ]
    .iter()
    .map(ToString::to_string)
    .chain([
        "--journal-dir".into(),
        base.join("journal").to_string_lossy().into_owned(),
        "--cache-dir".into(),
        base.join("cache").to_string_lossy().into_owned(),
        "--out".into(),
        base.to_string_lossy().into_owned(),
    ])
    .collect()
}

pub fn journal_path(base: &Path, run_id: &str) -> PathBuf {
    base.join("journal").join(format!("{run_id}.jsonl"))
}

pub fn finished_records(journal: &Path) -> usize {
    std::fs::read_to_string(journal)
        .map(|text| text.matches("\"t\":\"job_finished\"").count())
        .unwrap_or(0)
}

/// Pulls the count preceding `marker` out of the metrics line, e.g.
/// `2` from `"... — 2 executed, 2 cache hits ..."`.
pub fn metric(stdout: &str, marker: &str) -> usize {
    let tokens: Vec<&str> = stdout.split_whitespace().collect();
    for i in 1..tokens.len() {
        if tokens[i].trim_end_matches(',') == marker {
            if let Ok(n) = tokens[i - 1].parse() {
                return n;
            }
        }
    }
    panic!("no {marker:?} metric in output:\n{stdout}");
}

/// Spawns a real `tdsigma serve` backend on an OS-assigned port and
/// returns the child plus the `host:port` it announced. Stdout keeps
/// draining on a background thread so the child can never block on a
/// full pipe.
pub fn spawn_serve(cache_dir: &Path, workers: usize) -> (Child, String) {
    spawn_serve_with_env(cache_dir, workers, &[])
}

/// [`spawn_serve`] with extra environment variables — used by the
/// version-skew tests to fake a mismatched engine via
/// `TDSIGMA_FINGERPRINT`.
pub fn spawn_serve_with_env(
    cache_dir: &Path,
    workers: usize,
    envs: &[(&str, &str)],
) -> (Child, String) {
    let mut child = Command::new(bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            &workers.to_string(),
            "--cache-dir",
            &cache_dir.to_string_lossy(),
        ])
        .envs(envs.iter().copied())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("serve stdout readable");
        assert!(n > 0, "serve exited before announcing its address");
        if let Some(rest) = line.split("listening on ").nth(1) {
            break rest
                .split_whitespace()
                .next()
                .expect("address token after \"listening on\"")
                .to_string();
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

/// Blocks until the backend at `addr` answers `{"cmd":"ready"}` with
/// `"ready":true`, or panics at the deadline.
pub fn wait_for_ready(addr: &str, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(mut stream) = TcpStream::connect(addr) {
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            if stream.write_all(b"{\"cmd\":\"ready\"}\n").is_ok() {
                let mut response = String::new();
                if reader.read_line(&mut response).is_ok() && response.contains("\"ready\":true") {
                    return;
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "backend {addr} not ready within {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
