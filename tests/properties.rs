//! Property-based tests across the workspace's core invariants.

use proptest::prelude::*;
use tdsigma::dsp::decimate::{boxcar_decimate, CicDecimator};
use tdsigma::dsp::fft::{dft_reference, fft_real, ifft_in_place, Complex};
use tdsigma::dsp::spectrum::Spectrum;
use tdsigma::dsp::window::Window;
use tdsigma::layout::geom::{half_perimeter, Point, Rect};
use tdsigma::netlist::{verilog, Design, Module, PortDirection};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parseval's theorem holds for arbitrary real signals.
    #[test]
    fn fft_parseval(samples in proptest::collection::vec(-1e3f64..1e3, 256)) {
        let time: f64 = samples.iter().map(|x| x * x).sum();
        let spec = fft_real(&samples);
        let freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / samples.len() as f64;
        prop_assert!((time - freq).abs() <= 1e-6 * time.abs().max(1.0));
    }

    /// FFT matches the O(n²) DFT on random complex input.
    #[test]
    fn fft_matches_dft(re in proptest::collection::vec(-10f64..10.0, 32),
                       im in proptest::collection::vec(-10f64..10.0, 32)) {
        let input: Vec<Complex> = re.iter().zip(&im).map(|(&r, &i)| Complex::new(r, i)).collect();
        let mut fast = input.clone();
        tdsigma::dsp::fft::fft_in_place(&mut fast);
        let slow = dft_reference(&input);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    /// IFFT inverts FFT for arbitrary signals.
    #[test]
    fn fft_roundtrip(samples in proptest::collection::vec(-1e2f64..1e2, 128)) {
        let mut buf: Vec<Complex> = samples.iter().map(|&x| Complex::from_real(x)).collect();
        tdsigma::dsp::fft::fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (orig, got) in samples.iter().zip(&buf) {
            prop_assert!((orig - got.re).abs() < 1e-9);
            prop_assert!(got.im.abs() < 1e-9);
        }
    }

    /// A full-scale coherent tone always reads ~0 dBFS regardless of bin,
    /// window, and sample rate.
    #[test]
    fn spectrum_normalisation(bin in 5usize..200, rate in 1e5f64..1e9) {
        let n = 1024;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64).sin())
            .collect();
        for window in [Window::Rectangular, Window::Hann, Window::Hamming] {
            let s = Spectrum::from_samples(&samples, rate, window);
            prop_assert_eq!(s.peak_bin(), bin);
            prop_assert!(s.dbfs(bin).abs() < 0.2, "window {} read {}", window, s.dbfs(bin));
        }
    }

    /// CIC decimation preserves DC exactly for any order/ratio.
    #[test]
    fn cic_dc_gain(order in 1usize..5, ratio in 2usize..32, dc in -10f64..10.0) {
        let cic = CicDecimator::new(order, ratio);
        let input = vec![dc; ratio * 32];
        let out = cic.decimate(&input);
        let settled = &out[order + 1..];
        for &v in settled {
            prop_assert!((v - dc).abs() < 1e-9);
        }
    }

    /// Boxcar decimation never exceeds the input range.
    #[test]
    fn boxcar_bounded(samples in proptest::collection::vec(-5f64..5.0, 64), ratio in 1usize..16) {
        let out = boxcar_decimate(&samples, ratio);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    /// HPWL is translation invariant and non-negative.
    #[test]
    fn hpwl_invariants(pts in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 1..12),
                       dx in -500i64..500, dy in -500i64..500) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let moved: Vec<Point> = points.iter().map(|p| Point::new(p.x + dx, p.y + dy)).collect();
        let a = half_perimeter(&points);
        prop_assert!(a >= 0);
        prop_assert_eq!(a, half_perimeter(&moved));
    }

    /// Rect union always contains both operands; overlap is symmetric.
    #[test]
    fn rect_invariants(ax in -100i64..100, ay in -100i64..100, aw in 1i64..50, ah in 1i64..50,
                       bx in -100i64..100, by in -100i64..100, bw in 1i64..50, bh in 1i64..50) {
        let a = Rect::new(ax, ay, ax + aw, ay + ah);
        let b = Rect::new(bx, by, bx + bw, by + bh);
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    /// Verilog round trip is loss-free for arbitrary inverter-chain
    /// netlists (length, drive strengths, port names).
    #[test]
    fn verilog_roundtrip(length in 1usize..20, drives in proptest::collection::vec(0usize..3, 20)) {
        let mut m = Module::new("chain");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let mut prev = m.add_port("IN", PortDirection::Input);
        let out = m.add_port("OUT", PortDirection::Output);
        for i in 0..length {
            let next = if i == length - 1 { out } else { m.add_net(format!("n{i}")) };
            let cell = ["INVX1", "INVX2", "INVX4"][drives[i % drives.len()]];
            m.add_leaf(format!("I{i}"), cell, [("A", prev), ("Y", next), ("VDD", vdd), ("VSS", vss)])
                .expect("legal netlist");
            prev = next;
        }
        let design = Design::new(m).expect("valid design");
        let text = verilog::write_design(&design).expect("write");
        let back = verilog::read_design(&text).expect("read");
        prop_assert_eq!(verilog::write_design(&back).expect("write"), text);
        prop_assert_eq!(back.flatten().len(), length);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The placer always produces a legal placement (no overlaps, region
    /// containment) for random multi-domain netlists.
    #[test]
    fn placement_always_legal(n_a in 2usize..20, n_b in 2usize..20, seed in 0u64..50) {
        use std::collections::BTreeMap;
        use tdsigma::layout::floorplan::Floorplan;
        use tdsigma::layout::physlib::PhysicalLibrary;
        use tdsigma::layout::place::place;
        use tdsigma::netlist::PowerPlan;
        use tdsigma::tech::{NodeId, Technology};

        let mut m = Module::new("rand");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vc = m.add_port("VC", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let mut nets = vec![m.add_port("IN", PortDirection::Input)];
        for i in 0..(n_a + n_b) {
            nets.push(m.add_net(format!("n{i}")));
        }
        for i in 0..n_a {
            m.add_leaf(format!("A{i}"), "INVX1",
                [("A", nets[i]), ("Y", nets[i + 1]), ("VDD", vdd), ("VSS", vss)])
                .expect("legal");
        }
        for i in 0..n_b {
            m.add_leaf(format!("B{i}"), "NOR2X1",
                [("A", nets[i]), ("B", nets[i + 1]), ("Y", nets[n_a + i + 1]), ("VDD", vc), ("VSS", vss)])
                .expect("legal");
        }
        let flat = Design::new(m).expect("valid").flatten();
        let plan = PowerPlan::infer(&flat).expect("plan");
        let lib = PhysicalLibrary::for_technology(&Technology::for_node(NodeId::N40).expect("node"));
        let fp = Floorplan::generate(&flat, &plan, &lib, 0.8).expect("floorplan");
        let assignments: BTreeMap<String, String> = flat.cells.iter()
            .map(|c| (c.path.clone(), plan.region_of(&c.path).expect("assigned").name.clone()))
            .collect();
        let p = place(&flat, &assignments, &fp, &lib, seed).expect("placement");

        // Legality: pairwise non-overlap + region containment.
        let report = tdsigma::layout::checks::check_placement(&flat, &p);
        prop_assert!(report.is_clean(), "{}", report);
        for cell in &p.cells {
            let region = fp.region(&cell.region).expect("region exists");
            let r = Rect::new(cell.x_nm, cell.y_nm, cell.x_nm + cell.width_nm, cell.y_nm + cell.height_nm);
            prop_assert!(region.rect.contains_rect(&r));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The netlist generator yields an error-free, power-plan-valid design
    /// for any slice/stage combination, and its size follows the closed
    /// form: slices × (16·stages + 49·(stages/4 scaled) … ) — asserted via
    /// the generator-independent recount below.
    #[test]
    fn netgen_always_clean(slices in 1usize..6, stages in 2usize..6) {
        use std::collections::BTreeSet;
        use tdsigma::core::{netgen, spec::AdcSpec};
        use tdsigma::netlist::{lint::lint_flat, PowerPlan};

        let mut spec = AdcSpec::paper_40nm().expect("base spec");
        spec.n_slices = slices;
        spec.vco_stages = stages;
        // Keep the closed-form count simple: exclude the adder back end
        // (it has its own exhaustive gate-level tests).
        spec.include_output_adder = false;
        let spec = spec.validated().expect("valid");
        let design = netgen::generate(&spec).expect("netlist generates");
        let flat = design.flatten();

        // Closed-form cell count per slice:
        //   VCO: 2 rings × stages × 4 inv
        //   buffers: 2 × stages × 4 inv
        //   pd_VDD: stages × (8 + 1 XOR + 2 latches + 1 inv) + 1 clk inv
        //   DAC: 2 × stages inverters
        //   DAC resistors: 4 × stages cells × 4 fragments
        //   input resistors: 2 × 4 fragments
        let per_slice = 8 * stages + 8 * stages + (12 * stages + 1) + 2 * stages
            + 16 * stages + 8;
        prop_assert_eq!(flat.len(), slices * per_slice + 3, "plus 3 clock buffers");

        // Lint: warnings only (cross-coupled analog cells).
        let externals: BTreeSet<String> =
            design.top().ports().iter().map(|p| p.name.clone()).collect();
        let report = lint_flat(&flat, &externals).expect("lint runs");
        prop_assert!(!report.has_errors(), "{}", report);

        // Power plan covers every cell and validates.
        let plan = PowerPlan::infer(&flat).expect("plan infers");
        plan.validate(&flat).expect("plan validates");
        prop_assert_eq!(plan.domain_count(), 3 + 2 * slices);

        // Verilog round-trips.
        let text = tdsigma::netlist::verilog::write_design(&design).expect("write");
        let back = tdsigma::netlist::verilog::read_design(&text).expect("read");
        prop_assert_eq!(back.flatten().len(), flat.len());
    }

    /// The behavioral simulator's DC transfer stays monotone for any legal
    /// slice count and input level (no overload inside ±0.7 FS).
    #[test]
    fn sim_dc_transfer_monotone(slices in 1usize..5, seed in 0u64..20) {
        use tdsigma::core::{sim::AdcSimulator, spec::AdcSpec};
        let mut spec = AdcSpec::paper_40nm().expect("spec");
        spec.n_slices = slices;
        spec.steps_per_cycle = 8;
        spec.seed = seed;
        let spec = spec.validated().expect("valid");
        let fsv = spec.full_scale_v();
        let mut last = f64::NEG_INFINITY;
        for frac in [-0.7, -0.35, 0.0, 0.35, 0.7] {
            let mut sim = AdcSimulator::new(spec.clone()).expect("sim");
            let mean = sim.run(|_| frac * fsv, 1024).mean_code();
            prop_assert!(mean > last, "transfer must increase: {mean} after {last}");
            last = mean;
        }
    }
}
