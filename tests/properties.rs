//! Property-based tests across the workspace's core invariants.
//!
//! The workspace builds fully offline, so instead of a property-testing
//! dependency these run each invariant over a deterministic fan of
//! randomized cases drawn from the in-house [`Rng64`] stream. Failures
//! print the case seed, so any counterexample is exactly reproducible.

use tdsigma::dsp::decimate::{boxcar_decimate, CicDecimator};
use tdsigma::dsp::fft::{dft_reference, fft_real, ifft_in_place, Complex};
use tdsigma::dsp::spectrum::Spectrum;
use tdsigma::dsp::window::Window;
use tdsigma::layout::geom::{half_perimeter, Point, Rect};
use tdsigma::netlist::{verilog, Design, Module, PortDirection};
use tdsigma::tech::Rng64;

/// One RNG per case, seeded from the test name hash and case index so
/// every case is independent and reproducible.
fn case_rng(test: &str, case: u64) -> Rng64 {
    let tag: u64 = test.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
    });
    Rng64::seed_from_u64(tag ^ (case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

fn uniform(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

fn uniform_usize(rng: &mut Rng64, lo: usize, hi: usize) -> usize {
    lo + rng.gen_range(hi - lo)
}

fn uniform_i64(rng: &mut Rng64, lo: i64, hi: i64) -> i64 {
    lo + rng.gen_range((hi - lo) as usize) as i64
}

fn vec_f64(rng: &mut Rng64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| uniform(rng, lo, hi)).collect()
}

/// Parseval's theorem holds for arbitrary real signals.
#[test]
fn fft_parseval() {
    for case in 0..64u64 {
        let mut rng = case_rng("fft_parseval", case);
        let samples = vec_f64(&mut rng, 256, -1e3, 1e3);
        let time: f64 = samples.iter().map(|x| x * x).sum();
        let spec = fft_real(&samples);
        let freq: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / samples.len() as f64;
        assert!(
            (time - freq).abs() <= 1e-6 * time.abs().max(1.0),
            "case {case}: time {time} vs freq {freq}"
        );
    }
}

/// FFT matches the O(n²) DFT on random complex input.
#[test]
fn fft_matches_dft() {
    for case in 0..64u64 {
        let mut rng = case_rng("fft_matches_dft", case);
        let input: Vec<Complex> = (0..32)
            .map(|_| {
                Complex::new(
                    uniform(&mut rng, -10.0, 10.0),
                    uniform(&mut rng, -10.0, 10.0),
                )
            })
            .collect();
        let mut fast = input.clone();
        tdsigma::dsp::fft::fft_in_place(&mut fast);
        let slow = dft_reference(&input);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-7, "case {case}");
        }
    }
}

/// IFFT inverts FFT for arbitrary signals.
#[test]
fn fft_roundtrip() {
    for case in 0..64u64 {
        let mut rng = case_rng("fft_roundtrip", case);
        let samples = vec_f64(&mut rng, 128, -1e2, 1e2);
        let mut buf: Vec<Complex> = samples.iter().map(|&x| Complex::from_real(x)).collect();
        tdsigma::dsp::fft::fft_in_place(&mut buf);
        ifft_in_place(&mut buf);
        for (orig, got) in samples.iter().zip(&buf) {
            assert!((orig - got.re).abs() < 1e-9, "case {case}");
            assert!(got.im.abs() < 1e-9, "case {case}");
        }
    }
}

/// A full-scale coherent tone always reads ~0 dBFS regardless of bin,
/// window, and sample rate.
#[test]
fn spectrum_normalisation() {
    for case in 0..64u64 {
        let mut rng = case_rng("spectrum_normalisation", case);
        let bin = uniform_usize(&mut rng, 5, 200);
        let rate = uniform(&mut rng, 1e5, 1e9);
        let n = 1024;
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * bin as f64 * i as f64 / n as f64).sin())
            .collect();
        for window in [Window::Rectangular, Window::Hann, Window::Hamming] {
            let s = Spectrum::from_samples(&samples, rate, window);
            assert_eq!(s.peak_bin(), bin, "case {case}");
            assert!(
                s.dbfs(bin).abs() < 0.2,
                "case {case}: window {} read {}",
                window,
                s.dbfs(bin)
            );
        }
    }
}

/// CIC decimation preserves DC exactly for any order/ratio.
#[test]
fn cic_dc_gain() {
    for case in 0..64u64 {
        let mut rng = case_rng("cic_dc_gain", case);
        let order = uniform_usize(&mut rng, 1, 5);
        let ratio = uniform_usize(&mut rng, 2, 32);
        let dc = uniform(&mut rng, -10.0, 10.0);
        let cic = CicDecimator::new(order, ratio);
        let input = vec![dc; ratio * 32];
        let out = cic.decimate(&input);
        let settled = &out[order + 1..];
        for &v in settled {
            assert!((v - dc).abs() < 1e-9, "case {case}: {v} vs {dc}");
        }
    }
}

/// Boxcar decimation never exceeds the input range.
#[test]
fn boxcar_bounded() {
    for case in 0..64u64 {
        let mut rng = case_rng("boxcar_bounded", case);
        let samples = vec_f64(&mut rng, 64, -5.0, 5.0);
        let ratio = uniform_usize(&mut rng, 1, 16);
        let out = boxcar_decimate(&samples, ratio);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "case {case}");
        }
    }
}

/// HPWL is translation invariant and non-negative.
#[test]
fn hpwl_invariants() {
    for case in 0..64u64 {
        let mut rng = case_rng("hpwl_invariants", case);
        let n = uniform_usize(&mut rng, 1, 12);
        let points: Vec<Point> = (0..n)
            .map(|_| {
                Point::new(
                    uniform_i64(&mut rng, -1000, 1000),
                    uniform_i64(&mut rng, -1000, 1000),
                )
            })
            .collect();
        let dx = uniform_i64(&mut rng, -500, 500);
        let dy = uniform_i64(&mut rng, -500, 500);
        let moved: Vec<Point> = points
            .iter()
            .map(|p| Point::new(p.x + dx, p.y + dy))
            .collect();
        let a = half_perimeter(&points);
        assert!(a >= 0, "case {case}");
        assert_eq!(a, half_perimeter(&moved), "case {case}");
    }
}

/// Rect union always contains both operands; overlap is symmetric.
#[test]
fn rect_invariants() {
    for case in 0..64u64 {
        let mut rng = case_rng("rect_invariants", case);
        let rect = |rng: &mut Rng64| {
            let x = uniform_i64(rng, -100, 100);
            let y = uniform_i64(rng, -100, 100);
            let w = uniform_i64(rng, 1, 50);
            let h = uniform_i64(rng, 1, 50);
            Rect::new(x, y, x + w, y + h)
        };
        let a = rect(&mut rng);
        let b = rect(&mut rng);
        let u = a.union(&b);
        assert!(u.contains_rect(&a), "case {case}");
        assert!(u.contains_rect(&b), "case {case}");
        assert_eq!(a.overlaps(&b), b.overlaps(&a), "case {case}");
    }
}

/// Verilog round trip is loss-free for arbitrary inverter-chain
/// netlists (length, drive strengths, port names).
#[test]
fn verilog_roundtrip() {
    for case in 0..64u64 {
        let mut rng = case_rng("verilog_roundtrip", case);
        let length = uniform_usize(&mut rng, 1, 20);
        let drives: Vec<usize> = (0..20).map(|_| uniform_usize(&mut rng, 0, 3)).collect();
        let mut m = Module::new("chain");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let mut prev = m.add_port("IN", PortDirection::Input);
        let out = m.add_port("OUT", PortDirection::Output);
        for i in 0..length {
            let next = if i == length - 1 {
                out
            } else {
                m.add_net(format!("n{i}"))
            };
            let cell = ["INVX1", "INVX2", "INVX4"][drives[i % drives.len()]];
            m.add_leaf(
                format!("I{i}"),
                cell,
                [("A", prev), ("Y", next), ("VDD", vdd), ("VSS", vss)],
            )
            .expect("legal netlist");
            prev = next;
        }
        let design = Design::new(m).expect("valid design");
        let text = verilog::write_design(&design).expect("write");
        let back = verilog::read_design(&text).expect("read");
        assert_eq!(
            verilog::write_design(&back).expect("write"),
            text,
            "case {case}"
        );
        assert_eq!(back.flatten().len(), length, "case {case}");
    }
}

/// The placer always produces a legal placement (no overlaps, region
/// containment) for random multi-domain netlists.
#[test]
fn placement_always_legal() {
    use std::collections::BTreeMap;
    use tdsigma::layout::floorplan::Floorplan;
    use tdsigma::layout::physlib::PhysicalLibrary;
    use tdsigma::layout::place::place;
    use tdsigma::netlist::PowerPlan;
    use tdsigma::tech::{NodeId, Technology};

    for case in 0..12u64 {
        let mut rng = case_rng("placement_always_legal", case);
        let n_a = uniform_usize(&mut rng, 2, 20);
        let n_b = uniform_usize(&mut rng, 2, 20);
        let seed = rng.gen_range(50) as u64;

        let mut m = Module::new("rand");
        let vdd = m.add_port("VDD", PortDirection::Inout);
        let vc = m.add_port("VC", PortDirection::Inout);
        let vss = m.add_port("VSS", PortDirection::Inout);
        let mut nets = vec![m.add_port("IN", PortDirection::Input)];
        for i in 0..(n_a + n_b) {
            nets.push(m.add_net(format!("n{i}")));
        }
        for i in 0..n_a {
            m.add_leaf(
                format!("A{i}"),
                "INVX1",
                [
                    ("A", nets[i]),
                    ("Y", nets[i + 1]),
                    ("VDD", vdd),
                    ("VSS", vss),
                ],
            )
            .expect("legal");
        }
        for i in 0..n_b {
            m.add_leaf(
                format!("B{i}"),
                "NOR2X1",
                [
                    ("A", nets[i]),
                    ("B", nets[i + 1]),
                    ("Y", nets[n_a + i + 1]),
                    ("VDD", vc),
                    ("VSS", vss),
                ],
            )
            .expect("legal");
        }
        let flat = Design::new(m).expect("valid").flatten();
        let plan = PowerPlan::infer(&flat).expect("plan");
        let lib =
            PhysicalLibrary::for_technology(&Technology::for_node(NodeId::N40).expect("node"));
        let fp = Floorplan::generate(&flat, &plan, &lib, 0.8).expect("floorplan");
        let assignments: BTreeMap<String, String> = flat
            .cells
            .iter()
            .map(|c| {
                (
                    c.path.clone(),
                    plan.region_of(&c.path).expect("assigned").name.clone(),
                )
            })
            .collect();
        let p = place(&flat, &assignments, &fp, &lib, seed).expect("placement");

        // Legality: pairwise non-overlap + region containment.
        let report = tdsigma::layout::checks::check_placement(&flat, &p);
        assert!(report.is_clean(), "case {case}: {report}");
        for cell in &p.cells {
            let region = fp.region(&cell.region).expect("region exists");
            let r = Rect::new(
                cell.x_nm,
                cell.y_nm,
                cell.x_nm + cell.width_nm,
                cell.y_nm + cell.height_nm,
            );
            assert!(region.rect.contains_rect(&r), "case {case}");
        }
    }
}

/// The netlist generator yields an error-free, power-plan-valid design
/// for any slice/stage combination, and its size follows the closed
/// form — asserted via the generator-independent recount below.
#[test]
fn netgen_always_clean() {
    use std::collections::BTreeSet;
    use tdsigma::core::{netgen, spec::AdcSpec};
    use tdsigma::netlist::{lint::lint_flat, PowerPlan};

    for case in 0..10u64 {
        let mut rng = case_rng("netgen_always_clean", case);
        let slices = uniform_usize(&mut rng, 1, 6);
        let stages = uniform_usize(&mut rng, 2, 6);

        let mut spec = AdcSpec::paper_40nm().expect("base spec");
        spec.n_slices = slices;
        spec.vco_stages = stages;
        // Keep the closed-form count simple: exclude the adder back end
        // (it has its own exhaustive gate-level tests).
        spec.include_output_adder = false;
        let spec = spec.validated().expect("valid");
        let design = netgen::generate(&spec).expect("netlist generates");
        let flat = design.flatten();

        // Closed-form cell count per slice:
        //   VCO: 2 rings × stages × 4 inv
        //   buffers: 2 × stages × 4 inv
        //   pd_VDD: stages × (8 + 1 XOR + 2 latches + 1 inv) + 1 clk inv
        //   DAC: 2 × stages inverters
        //   DAC resistors: 4 × stages cells × 4 fragments
        //   input resistors: 2 × 4 fragments
        let per_slice = 8 * stages + 8 * stages + (12 * stages + 1) + 2 * stages + 16 * stages + 8;
        assert_eq!(
            flat.len(),
            slices * per_slice + 3,
            "case {case}: plus 3 clock buffers"
        );

        // Lint: warnings only (cross-coupled analog cells).
        let externals: BTreeSet<String> = design
            .top()
            .ports()
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let report = lint_flat(&flat, &externals).expect("lint runs");
        assert!(!report.has_errors(), "case {case}: {report}");

        // Power plan covers every cell and validates.
        let plan = PowerPlan::infer(&flat).expect("plan infers");
        plan.validate(&flat).expect("plan validates");
        assert_eq!(plan.domain_count(), 3 + 2 * slices, "case {case}");

        // Verilog round-trips.
        let text = tdsigma::netlist::verilog::write_design(&design).expect("write");
        let back = tdsigma::netlist::verilog::read_design(&text).expect("read");
        assert_eq!(back.flatten().len(), flat.len(), "case {case}");
    }
}

/// The behavioral simulator's DC transfer stays monotone for any legal
/// slice count and input level (no overload inside ±0.7 FS).
#[test]
fn sim_dc_transfer_monotone() {
    use tdsigma::core::{sim::AdcSimulator, spec::AdcSpec};
    for case in 0..10u64 {
        let mut rng = case_rng("sim_dc_transfer_monotone", case);
        let slices = uniform_usize(&mut rng, 1, 5);
        let seed = rng.gen_range(20) as u64;
        let mut spec = AdcSpec::paper_40nm().expect("spec");
        spec.n_slices = slices;
        spec.steps_per_cycle = 8;
        spec.seed = seed;
        let spec = spec.validated().expect("valid");
        let fsv = spec.full_scale_v();
        let mut last = f64::NEG_INFINITY;
        for frac in [-0.7, -0.35, 0.0, 0.35, 0.7] {
            let mut sim = AdcSimulator::new(spec.clone()).expect("sim");
            let mean = sim.run(|_| frac * fsv, 1024).mean_code();
            assert!(
                mean > last,
                "case {case}: transfer must increase: {mean} after {last}"
            );
            last = mean;
        }
    }
}
