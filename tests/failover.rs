//! Distributed-sweep failover, against real processes.
//!
//! The fault-tolerance contract under test (see DESIGN.md §11):
//!   1. a two-backend sweep with one backend SIGKILLed mid-run completes
//!      without operator intervention, and its `sweep.json` is
//!      byte-identical to a single-machine run of the same grid at the
//!      same seed — failover changes where work runs, never what it
//!      produces;
//!   2. with every backend down, the sweep still completes via local
//!      in-process fallback, and the degradation is reported on stderr
//!      and in the dispatch summary.
//!
//! Both tests drive the real binary: real `tdsigma serve` backends over
//! TCP, a real `tdsigma sweep --workers host:port,…` client, and a real
//! `kill -9`.

use std::process::Command;
use std::time::{Duration, Instant};

mod common;
use common::{
    bin, finished_records, journal_path, spawn_serve, sweep_args, wait_for_ready, FAST_SAMPLES,
    SLOW_SAMPLES,
};

#[test]
fn kill9_one_backend_mid_sweep_still_matches_local_bytes() {
    let run_id = "failover-kill-it";
    let root = std::env::temp_dir().join(format!("tdsigma_failover_kill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    // Control: the same grid on the local pool. sweep.json embeds the
    // run id, so both runs share it (with separate journal/cache dirs).
    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, SLOW_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(
        out.status.success(),
        "control run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // Two real single-worker backends; the sweep round-robins across
    // them, so killing one mid-run strands in-flight work on it.
    let (mut backend_a, addr_a) = spawn_serve(&root.join("serve_a"), 1);
    let (mut backend_b, addr_b) = spawn_serve(&root.join("serve_b"), 1);
    wait_for_ready(&addr_a, Duration::from_secs(30));
    wait_for_ready(&addr_b, Duration::from_secs(30));

    let mut sweep = Command::new(bin())
        .args(sweep_args(
            &dist,
            &format!("{addr_a},{addr_b}"),
            run_id,
            SLOW_SAMPLES,
        ))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("distributed sweep spawns");

    // SIGKILL backend A once the journal shows progress but before the
    // grid is done — later jobs routed to A must fail over to B.
    let journal = journal_path(&dist, run_id);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let done = finished_records(&journal);
        if done >= 1 {
            assert!(
                done < 4,
                "all 4 jobs finished before the kill; raise SLOW_SAMPLES"
            );
            break;
        }
        if let Some(status) = sweep.try_wait().expect("try_wait") {
            panic!("sweep exited ({status:?}) before the test could kill a backend");
        }
        assert!(
            Instant::now() < deadline,
            "no journal progress within 120 s"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    backend_a.kill().expect("SIGKILL backend A");
    let _ = backend_a.wait();

    // The sweep must finish on its own — backend B and, if B's breaker
    // ever rejects, the local fallback absorb the rest.
    let status = sweep.wait().expect("sweep reaped");
    assert!(
        status.success(),
        "sweep must survive a backend SIGKILL, got {status:?}"
    );
    let produced = std::fs::read(dist.join("sweep.json")).expect("distributed artifact");
    assert_eq!(
        produced,
        expected,
        "failover run's sweep.json differs from the local run:\n{}",
        String::from_utf8_lossy(&produced)
    );

    backend_b.kill().expect("stop backend B");
    let _ = backend_b.wait();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn all_backends_down_completes_via_local_fallback_and_reports_it() {
    let run_id = "failover-down-it";
    let root = std::env::temp_dir().join(format!("tdsigma_failover_down_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let control = root.join("control");
    let dist = root.join("dist");
    std::fs::create_dir_all(&control).expect("mkdir control");
    std::fs::create_dir_all(&dist).expect("mkdir dist");

    let out = Command::new(bin())
        .args(sweep_args(&control, "2", run_id, FAST_SAMPLES))
        .output()
        .expect("control run spawns");
    assert!(out.status.success(), "control run failed");
    let expected = std::fs::read(control.join("sweep.json")).expect("control artifact");

    // Ports 1 and 2 are privileged and unbound: every connect is
    // refused, so the whole fleet is down from the first job.
    let out = Command::new(bin())
        .args(sweep_args(
            &dist,
            "127.0.0.1:1,127.0.0.1:2",
            run_id,
            FAST_SAMPLES,
        ))
        .output()
        .expect("degraded sweep spawns");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "a sweep must never fail solely because the fleet did:\n{stderr}"
    );
    assert!(
        stderr.contains("degrading to local execution"),
        "stderr must warn about the degradation: {stderr}"
    );
    assert!(
        stderr.contains("via local fallback"),
        "stderr must summarize the fallback count: {stderr}"
    );
    assert!(
        stdout.contains("DEGRADED"),
        "dispatch summary must flag the degradation: {stdout}"
    );

    let produced = std::fs::read(dist.join("sweep.json")).expect("degraded artifact");
    assert_eq!(
        produced,
        expected,
        "local-fallback sweep.json differs from the local run:\n{}",
        String::from_utf8_lossy(&produced)
    );
    let _ = std::fs::remove_dir_all(&root);
}
