//! Gate-level verification of the *generated* netlist: the Table-1
//! comparator and the pd_VDD quantizer path are simulated as gates (via
//! `netlist::gatesim`), independently of the behavioral ADC model. This is
//! the digital half of the paper's claim that the circuit decomposes into
//! working standard-cell logic.

use tdsigma::core::netgen;
use tdsigma::netlist::{Design, GateSimulator, Logic};

fn comparator_sim() -> GateSimulator {
    let design = Design::new(netgen::comparator_module()).expect("design");
    GateSimulator::new(&design.flatten()).expect("simulator")
}

#[test]
fn table1_comparator_samples_on_clock_low() {
    // The NOR3-based comparator evaluates while CLK is low (NOR inputs
    // active-low) and resets both internal nodes when CLK is high; the SR
    // latch keeps the last decision through the reset — exactly the
    // paper's §2.2.1 description, now verified on the generated gates.
    let mut sim = comparator_sim();

    // Decide: INP > INM while CLK low.
    sim.drive("CLK", false);
    sim.drive("INP", true);
    sim.drive("INM", false);
    assert_eq!(sim.value("Q"), Logic::One, "positive input decides Q=1");
    assert_eq!(sim.value("QB"), Logic::Zero);

    // Reset phase: CLK high collapses the comparator nodes...
    sim.drive("CLK", true);
    assert_eq!(sim.value("OUTP"), Logic::Zero);
    assert_eq!(sim.value("OUTM"), Logic::Zero);
    // ...but the SR latch holds the decision (the paper's "logic keeping
    // when the comparator resets").
    assert_eq!(sim.value("Q"), Logic::One);

    // Opposite decision next cycle.
    sim.drive("INP", false);
    sim.drive("INM", true);
    sim.drive("CLK", false);
    assert_eq!(sim.value("Q"), Logic::Zero, "negative input decides Q=0");
    assert_eq!(sim.value("QB"), Logic::One);
}

#[test]
fn comparator_holds_through_many_reset_cycles() {
    let mut sim = comparator_sim();
    sim.drive("CLK", false);
    sim.drive("INP", true);
    sim.drive("INM", false);
    for _ in 0..8 {
        sim.drive("CLK", true);
        assert_eq!(sim.value("Q"), Logic::One, "held through reset");
        sim.drive("CLK", false);
        assert_eq!(sim.value("Q"), Logic::One, "re-decided the same way");
    }
}

#[test]
fn pd_vdd_retiming_path_delays_by_half_cycle() {
    // One quantizer tap of the generated pd_VDD block: SAFF pair → XOR →
    // latch pair. Drive the buffered VCO levels, toggle the clock, and
    // check the thermometer bit appears after the full latch pair.
    let design = Design::with_modules(
        [netgen::comparator_module(), netgen::pd_vdd_module(1)],
        "pd_VDD",
    )
    .expect("design");
    let mut sim = GateSimulator::new(&design.flatten()).expect("simulator");

    // Tap sees VCO1 high, VCO2 low → XOR must produce 1.
    sim.drive("BOP0", true);
    sim.drive("BON0", false);
    sim.drive("BOP2_0", false);
    sim.drive("BON2_0", true);

    // Evaluate phase (CLK low): comparators decide, first latch (EN=CLKB)
    // is transparent, second (EN=CLK) holds its old value.
    sim.drive("CLK", false);
    assert_eq!(sim.value("X0"), Logic::One, "XOR of the SAFF outputs");
    // Hold phase (CLK high): second latch opens → T0 updates.
    sim.drive("CLK", true);
    assert_eq!(sim.value("T0"), Logic::One, "retimed bit reaches the DAC");
    assert_eq!(
        sim.value("TB0"),
        Logic::Zero,
        "complement for the N-side DAC"
    );

    // Flip the phase relationship; the output follows one half-cycle later.
    sim.drive("CLK", false);
    sim.drive("BOP0", false);
    sim.drive("BON0", true);
    assert_eq!(
        sim.value("T0"),
        Logic::One,
        "old value still held while CLK low"
    );
    sim.drive("CLK", true);
    assert_eq!(sim.value("T0"), Logic::Zero, "new decision after the edge");
}

#[test]
fn pd_vrefp_dac_inverters_complement() {
    let design = Design::new(netgen::pd_vrefp_module(2)).expect("design");
    let mut sim = GateSimulator::new(&design.flatten()).expect("simulator");
    sim.drive("T0", true);
    sim.drive("TB0", false);
    sim.drive("T1", false);
    sim.drive("TB1", true);
    // Code bit high → DAC_OUT low (pulls VCTRLP down) and DAC_OUT_B high.
    assert_eq!(sim.value("DAC_OUT0"), Logic::Zero);
    assert_eq!(sim.value("DAC_OUT_B0"), Logic::One);
    assert_eq!(sim.value("DAC_OUT1"), Logic::One);
    assert_eq!(sim.value("DAC_OUT_B1"), Logic::Zero);
}

#[test]
fn nand3_comparator_structure_also_latches() {
    // The [16]-style NAND3 comparator (built here ad hoc) is the dual of
    // Table 1: it evaluates while CLK is HIGH. Gate-level both work — the
    // difference the paper exploits is *analog* (input common-mode range),
    // which the behavioral ablation `abl_comparator` covers.
    use tdsigma::netlist::{Module, PortDirection};
    let mut m = Module::new("nand_cmp");
    let q = m.add_port("Q", PortDirection::Output);
    let qb = m.add_port("QB", PortDirection::Output);
    let vdd = m.add_port("VDD", PortDirection::Inout);
    let vss = m.add_port("VSS", PortDirection::Inout);
    let clk = m.add_port("CLK", PortDirection::Input);
    let inp = m.add_port("INP", PortDirection::Input);
    let inm = m.add_port("INM", PortDirection::Input);
    let outp = m.add_net("OUTP");
    let outm = m.add_net("OUTM");
    m.add_leaf(
        "I0",
        "NAND3X1",
        [
            ("A", outm),
            ("B", inp),
            ("C", clk),
            ("Y", outp),
            ("VDD", vdd),
            ("VSS", vss),
        ],
    )
    .unwrap();
    m.add_leaf(
        "I1",
        "NAND3X1",
        [
            ("A", outp),
            ("B", inm),
            ("C", clk),
            ("Y", outm),
            ("VDD", vdd),
            ("VSS", vss),
        ],
    )
    .unwrap();
    m.add_leaf(
        "I2",
        "NAND2X1",
        [("A", outp), ("B", qb), ("Y", q), ("VDD", vdd), ("VSS", vss)],
    )
    .unwrap();
    m.add_leaf(
        "I3",
        "NAND2X1",
        [("A", outm), ("B", q), ("Y", qb), ("VDD", vdd), ("VSS", vss)],
    )
    .unwrap();
    let mut sim = GateSimulator::new(&Design::new(m).expect("design").flatten()).expect("sim");
    sim.drive("CLK", true);
    sim.drive("INP", true);
    sim.drive("INM", false);
    assert_eq!(sim.value("OUTP"), Logic::Zero);
    assert_eq!(sim.value("OUTM"), Logic::One);
    sim.drive("CLK", false); // reset: both NAND outputs high
    assert_eq!(sim.value("OUTP"), Logic::One);
    assert_eq!(sim.value("OUTM"), Logic::One);
}
