//! # tdsigma — facade crate
//!
//! Re-exports every subsystem of the `tdsigma` workspace, a full Rust
//! reproduction of *"A Scaling Compatible, Synthesis Friendly VCO-based
//! Delta-sigma ADC Design and Synthesis Methodology"* (DAC 2017).
//!
//! See the `examples/` directory for runnable scenarios and `DESIGN.md` for
//! the system inventory.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tdsigma_baselines as baselines;
pub use tdsigma_circuit as circuit;
pub use tdsigma_core as core;
pub use tdsigma_dsp as dsp;
pub use tdsigma_jobs as jobs;
pub use tdsigma_layout as layout;
pub use tdsigma_netlist as netlist;
pub use tdsigma_obs as obs;
pub use tdsigma_opt as opt;
pub use tdsigma_tech as tech;
