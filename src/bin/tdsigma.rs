//! `tdsigma` — command-line front end for the ADC design & synthesis flow.
//!
//! ```text
//! tdsigma design [--node 40] [--fs-mhz 750] [--bw-mhz 5] [--slices 8]
//!                [--samples 16384] [--out results]
//! tdsigma nodes
//! tdsigma help
//! ```
//!
//! `design` runs the complete Fig.-9 flow and writes every artifact
//! (Verilog, LEF, DEF, .fp, GDS-text, layout SVG, spectrum CSV, JSON
//! report) into the output directory.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use tdsigma::core::{flow::DesignFlow, spec::AdcSpec};
use tdsigma::layout::physlib::PhysicalLibrary;
use tdsigma::layout::{gds, lef, render};
use tdsigma::tech::{NodeId, Technology};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("design") => match parse_flags(&args[1..]) {
            Ok(flags) => run_design(&flags),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Some("nodes") => {
            println!("supported technology nodes:");
            for id in NodeId::ALL {
                let t = Technology::for_node(id).expect("built-in node");
                println!("  {t}");
            }
            ExitCode::SUCCESS
        }
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("tdsigma — scaling-compatible, synthesis-friendly VCO-based ΔΣ ADC flow");
    println!();
    println!("USAGE:");
    println!("  tdsigma design [--node N] [--fs-mhz F] [--bw-mhz B] [--slices S]");
    println!("                 [--samples K] [--out DIR]     run the full flow");
    println!("  tdsigma nodes                                 list technology nodes");
    println!("  tdsigma help                                  this message");
    println!();
    println!("DEFAULTS: --node 40 --fs-mhz 750 --bw-mhz 5 --slices 8 --samples 16384");
    println!("          --out results");
}

fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut flags = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn run_design(flags: &BTreeMap<String, String>) -> ExitCode {
    match try_run_design(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_run_design(flags: &BTreeMap<String, String>) -> Result<(), Box<dyn std::error::Error>> {
    let get_f64 = |key: &str, default: f64| -> Result<f64, String> {
        flags
            .get(key)
            .map(|v| v.parse::<f64>().map_err(|e| format!("--{key}: {e}")))
            .unwrap_or(Ok(default))
    };
    let node_nm = get_f64("node", 40.0)?;
    let fs_hz = get_f64("fs-mhz", 750.0)? * 1e6;
    let bw_hz = get_f64("bw-mhz", 5.0)? * 1e6;
    let slices = get_f64("slices", 8.0)? as usize;
    let samples = get_f64("samples", 16_384.0)? as usize;
    let default_out = "results".to_string();
    let out = flags.get("out").unwrap_or(&default_out);
    let out = Path::new(out);
    fs::create_dir_all(out)?;

    let node = NodeId::from_gate_length(node_nm)?;
    let tech = Technology::for_node(node)?;
    let spec = AdcSpec::for_technology(tech, fs_hz, bw_hz)?.with_slices(slices)?;
    println!(
        "designing {} slices at {} — fs {:.0} MHz, BW {:.2} MHz, OSR {:.0}",
        spec.n_slices,
        spec.tech,
        spec.fs_hz / 1e6,
        spec.bw_hz / 1e6,
        spec.oversampling_ratio()
    );

    let outcome = DesignFlow::new(spec.clone()).with_samples(samples).run()?;
    println!("{outcome}");

    // Artifacts.
    fs::write(out.join("adc_top.v"), &outcome.verilog)?;
    let lib = PhysicalLibrary::for_technology(&spec.tech);
    fs::write(out.join("library.lef"), lef::to_lef(&lib))?;
    fs::write(out.join("adc_top.fp"), outcome.layout.floorplan.to_fp_text())?;
    fs::write(
        out.join("adc_top.def"),
        lef::to_def(
            &outcome.layout.placement,
            "adc_top",
            outcome.layout.floorplan.die.width(),
            outcome.layout.floorplan.die.height(),
        ),
    )?;
    fs::write(
        out.join("adc_top.gds.txt"),
        gds::to_gds_text(&outcome.layout.placement, &lib, "adc_top"),
    )?;
    fs::write(
        out.join("layout.svg"),
        render::to_svg_with_routes(
            &outcome.layout.floorplan,
            &outcome.layout.placement,
            &outcome.layout.routing,
        ),
    )?;
    let spectrum = outcome.capture.spectrum(tdsigma::dsp::window::Window::Hann);
    let mut csv = String::from("freq_hz,dbfs\n");
    for bin in 1..spectrum.len() {
        csv.push_str(&format!(
            "{},{}\n",
            spectrum.bin_frequency_hz(bin),
            spectrum.dbfs(bin)
        ));
    }
    fs::write(out.join("spectrum.csv"), csv)?;
    fs::write(out.join("report.json"), report_json(&outcome))?;
    println!(
        "wrote adc_top.{{v,fp,def,gds.txt}}, library.lef, layout.svg, spectrum.csv, report.json → {}",
        out.display()
    );
    Ok(())
}

/// Hand-rolled JSON (flat object, numeric fields) — no serialization
/// dependency needed for a report this small.
fn report_json(outcome: &tdsigma::core::flow::FlowOutcome) -> String {
    let r = &outcome.report;
    let fields: Vec<(&str, f64)> = vec![
        ("node_nm", r.node.gate_length().value()),
        ("fs_mhz", r.fs_mhz),
        ("bw_mhz", r.bw_mhz),
        ("sndr_db", r.sndr_db),
        ("enob", r.enob),
        ("power_mw", r.power_mw),
        ("digital_fraction", r.digital_fraction),
        ("area_mm2", r.area_mm2),
        ("fom_fj_per_conv", r.fom_fj),
        ("timing_slack_ps", outcome.timing.slack_ps()),
        ("wirelength_um", outcome.layout.routing.total_wirelength_nm as f64 / 1e3),
        ("cells", outcome.layout.placement.len() as f64),
    ];
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}
