//! `tdsigma` — command-line front end for the ADC design & synthesis flow.
//!
//! ```text
//! tdsigma design [--node 40] [--fs-mhz 750] [--bw-mhz 5] [--slices 8]
//!                [--samples 16384] [--out results]
//! tdsigma sweep  [--nodes 40,180] [--slices 4,8] [--fs-mhz 750] [--amps 0.79]
//!                [--bw-mhz 5] [--kind sim] [--samples 8192] [--seed 2017]
//!                [--workers N | host:port,host:port[,local]] [--hedge-ms MS]
//!                [--retries 1] [--cache-dir results/cache]
//!                [--no-cache] [--trace results/trace/sweep.jsonl] [--out results]
//!                [--run-id ID] [--journal-dir results/journal] [--no-journal]
//!                [--resume ID] [--resume-force]
//! tdsigma optimize [--space FILE] [--strategy cma|halving] [--kind flow|sim]
//!                [--budget 32] [--seed 2017] [--sndr-floor 70] [--samples K]
//!                [--population L] [--nodes 40,180] [--slices-range 2,16]
//!                [--stages-range 3,5] [--gain-range 0.5,2.0]
//!                [--rdac-range 11000,44000] [--fs-mhz F] [--bw-mhz B]
//!                [--workers ...] [--retries 1] [--cache-dir results/cache]
//!                [--no-cache] [--trace FILE] [--out results] [--run-id ID]
//!                [--journal-dir results/journal] [--no-journal]
//!                [--resume ID] [--dry-run]
//! tdsigma serve  [--addr 127.0.0.1:4017] [--workers N] [--retries 1]
//!                [--cache-dir results/cache] [--no-cache] [--trace FILE]
//!                [--max-connections 64] [--allow-remote-shutdown]
//!                [--quota-burst N] [--quota-rps R] [--max-queue Q]
//! tdsigma fleet  [--children 2] [--workers W] [--cache-dir DIR]
//!                [--max-connections N] [--restart-max 5]
//!                [--health-interval-ms 500]
//! tdsigma cache  stats|scrub [--cache-dir results/cache]
//! tdsigma nodes
//! tdsigma help
//! ```
//!
//! `design` runs the complete Fig.-9 flow and writes every artifact
//! (Verilog, LEF, DEF, .fp, GDS-text, layout SVG, spectrum CSV, JSON
//! report) into the output directory.
//!
//! `sweep` runs a grid of configurations (node × slices × fs × amplitude)
//! through the parallel job engine: results are cached under
//! `results/cache/` and bit-identical regardless of `--workers`. Every
//! sweep also writes a crash-recovery journal (`results/journal/<run-id>.jsonl`
//! unless `--no-journal`); a killed sweep is finished by
//! `tdsigma sweep --resume <run-id>`, which re-executes only the jobs the
//! journal does not record as complete and writes a `sweep.json`
//! bit-identical to an uninterrupted run.
//!
//! `sweep --workers` also accepts a comma-separated backend list
//! (`host:port,host:port[,local]`): jobs then dispatch over the serve
//! protocol to those `tdsigma serve` peers with per-backend circuit
//! breakers, failover, optional hedging (`--hedge-ms`) and a guaranteed
//! local fallback — results land in the same content-addressed cache,
//! so distributed and local runs are byte-interchangeable and equally
//! `--resume`-able.
//!
//! `optimize` runs a closed-loop design-space search (CMA-ES-like
//! evolution or successive-halving racing, see `crates/opt`) over slice
//! count, VCO sizing, DAC resistance and technology node. Candidates are
//! evaluated through the same job engine as `sweep` — cache, journal,
//! `--workers` fleet dispatch and `--resume` all apply — and the full
//! generation history lands in `optimize.json`. `--dry-run` (both sweep
//! and optimize) prints the planned jobs and predicted cache hits
//! without executing anything.
//!
//! `serve` exposes the same engine over TCP — one JSON job request per
//! line in, one JSON report per line out (see `crates/jobs/src/server.rs`
//! or README for the protocol). The protocol `shutdown` command is
//! refused unless the server was started with `--allow-remote-shutdown`.
//! Admission control is built in: `--quota-burst`/`--quota-rps` cap each
//! client id with a token bucket, `--max-queue` sheds work when the
//! queue outgrows the live workers, and every rejection is structured
//! with a computed `retry_after_ms`. Sweep clients can attach a per-job
//! wall-clock budget with `--deadline-ms`: the remaining budget rides
//! each frame and a backend refuses work it provably cannot finish.
//!
//! `fleet` runs a self-healing fleet of serve children: it spawns
//! `--children` servers on auto-picked ports (printed at startup),
//! restarts any child that crashes or stops answering `ready` (with
//! deterministic-jitter backoff and a restart-storm cap), and drains
//! the fleet gracefully, one child at a time, on SIGTERM/SIGINT.
//!
//! `sweep --journal-gc` prunes journals of provably-finished runs (a
//! bounded `results/journal/`, like the cache quarantine prune);
//! successful sweeps also auto-prune, keeping the newest 32.
//!
//! Every cache artifact is checksummed and stamped with the **engine
//! fingerprint** (see `tdsigma_core::engine_fingerprint`): a warm cache
//! written by a different binary is demoted to a `stale/` tier instead
//! of replayed, `--resume` refuses a journal planned by a different
//! engine unless `--resume-force` re-executes everything, serve
//! advertises the fingerprint in `health`/`ready`/`stats`, sweeps
//! exclude mismatched-fingerprint backends from dispatch (degrading to
//! matching backends plus local fallback), and `fleet` refuses to
//! adopt a restarted child whose fingerprint changed under it.
//! `tdsigma cache stats` inspects the tiers; `tdsigma cache scrub`
//! prunes everything the current engine would not replay.
//!
//! `--trace FILE` (sweep and serve) turns on the observability layer's
//! JSON-lines trace sink: one line per flow stage span, job attempt and
//! engine event. Both commands also print a per-stage wall-time
//! breakdown at the end, with or without `--trace` (the span histograms
//! are always on — they cost only atomic adds).

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use tdsigma::core::{flow::DesignFlow, spec::AdcSpec};
use tdsigma::jobs::{
    default_workers, execute, gc_finished, install_stop_handler, validate_run_id, DispatchConfig,
    Dispatcher, Engine, EngineConfig, FaultPlan, Fleet, FleetConfig, Job, JobKind, Journal,
    JournalRecord, Json, PlanPreview, PoolConfig, ResultCache, Runner, Server, ServerConfig,
};
use tdsigma::layout::physlib::PhysicalLibrary;
use tdsigma::layout::{gds, lef, render};
use tdsigma::opt::{initial_jobs, optimize, OptConfig, SearchSpace, Strategy};
use tdsigma::tech::{NodeId, Technology};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dispatch = |args: &[String], known: &[&str], run: fn(&Flags) -> ExitCode| match parse_flags(
        args, known,
    ) {
        Ok(flags) => run(&flags),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    };
    match args.first().map(String::as_str) {
        Some("design") => dispatch(&args[1..], DESIGN_FLAGS, run_design),
        Some("sweep") => dispatch(&args[1..], SWEEP_FLAGS, run_sweep),
        Some("optimize") => dispatch(&args[1..], OPTIMIZE_FLAGS, run_optimize),
        Some("serve") => dispatch(&args[1..], SERVE_FLAGS, run_serve),
        Some("fleet") => dispatch(&args[1..], FLEET_FLAGS, run_fleet),
        Some("cache") => run_cache(&args[1..]),
        Some("nodes") => {
            println!("supported technology nodes:");
            for id in NodeId::ALL {
                let t = Technology::for_node(id).expect("built-in node");
                println!("  {t}");
            }
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some("version") | Some("--version") | Some("-V") => {
            println!("tdsigma {}", env!("CARGO_PKG_VERSION"));
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command: {other}\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!("tdsigma — scaling-compatible, synthesis-friendly VCO-based ΔΣ ADC flow");
    println!();
    println!("USAGE:");
    println!("  tdsigma design [--node N] [--fs-mhz F] [--bw-mhz B] [--slices S]");
    println!("                 [--samples K] [--out DIR]     run the full flow");
    println!("  tdsigma sweep  [--nodes 40,180] [--slices 4,8] [--fs-mhz 750]");
    println!("                 [--amps 0.79] [--bw-mhz B] [--kind sim|flow]");
    println!("                 [--samples K] [--seed S] [--retries R]");
    println!("                 [--workers N | host:port,host:port[,local]] [--hedge-ms MS]");
    println!("                 [--cache-dir DIR] [--no-cache] [--trace FILE] [--out DIR]");
    println!("                 [--run-id ID] [--journal-dir DIR] [--no-journal]");
    println!("                 [--resume ID] [--resume-force] [--dry-run]");
    println!("                 [--verify-sample P] [--verify-all]");
    println!("                                                run a cached parallel grid");
    println!("  tdsigma optimize [--space FILE] [--strategy cma|halving]");
    println!("                 [--kind flow|sim] [--budget N] [--seed S]");
    println!("                 [--sndr-floor DB] [--samples K] [--population L]");
    println!("                 [--nodes 40,180] [--slices-range LO,HI]");
    println!("                 [--stages-range LO,HI] [--gain-range LO,HI]");
    println!("                 [--rdac-range LO,HI] [--fs-mhz F] [--bw-mhz B]");
    println!("                 [engine flags as sweep] [--resume ID] [--dry-run]");
    println!("                                                closed-loop design search");
    println!("  tdsigma serve  [--addr HOST:PORT] [--workers W] [--retries R]");
    println!("                 [--cache-dir DIR] [--no-cache] [--trace FILE]");
    println!("                 [--max-connections N] [--allow-remote-shutdown]");
    println!("                 [--quota-burst N] [--quota-rps R] [--max-queue Q]");
    println!("                                                JSON-lines job server");
    println!("  tdsigma fleet  [--children 2] [--workers W] [--cache-dir DIR]");
    println!("                 [--max-connections N] [--restart-max 5]");
    println!("                 [--health-interval-ms 500] [serve admission flags]");
    println!("                                                self-healing serve fleet");
    println!("  tdsigma cache  stats|scrub [--cache-dir DIR]  inspect / prune the cache");
    println!("  tdsigma nodes                                 list technology nodes");
    println!("  tdsigma help | --help | -h                    this message");
    println!("  tdsigma version | --version | -V              print the version");
    println!();
    println!("DEFAULTS: --node 40 --fs-mhz 750 --bw-mhz 5 --slices 8 --samples 16384");
    println!("          --out results --cache-dir results/cache --addr 127.0.0.1:4017");
    println!("          --journal-dir results/journal --max-connections 64");
    println!();
    println!("CRASH RECOVERY: every sweep writes a write-ahead journal; after a crash,");
    println!("  `tdsigma sweep --resume ID` finishes the run without redoing completed");
    println!("  jobs and writes a bit-identical sweep.json.");
    println!("DISTRIBUTED SWEEPS: `--workers host:port,host:port[,local]` dispatches jobs");
    println!("  to `tdsigma serve` backends with per-backend circuit breakers, failover");
    println!("  and a guaranteed local fallback; results are byte-identical to a local");
    println!("  run. `--hedge-ms MS` duplicates a slow job onto a second backend.");
    println!("EXIT CODES (sweep): 0 = every job succeeded; 1 = degraded (some jobs");
    println!("  failed — sweep.json carries their structured failure records) or a");
    println!("  fatal setup/journal error.");
    println!("DESIGN-SPACE SEARCH: `tdsigma optimize` explores slices × VCO sizing ×");
    println!("  DAC resistance × node with a CMA-ES-like strategy or successive-halving");
    println!("  racing; same seed → byte-identical optimize.json, and a killed run is");
    println!("  finished by `tdsigma optimize --resume ID` through the result cache.");
    println!("DRY RUN: `--dry-run` (sweep and optimize) prints the planned jobs and");
    println!("  predicted cache hits vs misses, then exits without executing anything.");
    println!("OVERLOAD: serve sheds work it cannot take (`--quota-burst`/`--quota-rps`");
    println!("  per-client quotas, `--max-queue` depth cap) with structured busy");
    println!("  rejections carrying retry_after_ms; sweep `--deadline-ms MS` attaches a");
    println!("  per-job wall-clock budget that backends enforce. `tdsigma fleet` keeps");
    println!("  N serve children alive (crash/stall restart with backoff and a storm");
    println!("  cap) and drains them gracefully on SIGTERM. `sweep --journal-gc`");
    println!("  prunes journals of finished runs; successful sweeps keep the newest 32.");
    println!("RESULT INTEGRITY: serve attests each report with a checksum the client");
    println!("  re-verifies; `--verify-sample P` re-runs a deterministic fraction P of");
    println!("  remote results on a second backend or locally and byte-compares them");
    println!("  (`--verify-all` checks every result). A backend whose bytes disagree");
    println!("  with redundant recomputation is integrity-quarantined for the run and");
    println!("  the verified bytes win, so sweep.json matches a local run exactly.");
    println!("CACHE INTEGRITY: artifacts are checksummed and stamped with the engine");
    println!("  fingerprint; a warm cache written by a different binary is demoted to");
    println!("  stale/, never replayed, and `--resume` refuses a journal planned by a");
    println!("  different engine unless --resume-force re-executes everything.");
    println!("  `tdsigma cache stats` inspects the tiers; `cache scrub` prunes them.");
}

/// Parsed command line: `--key value` pairs plus bare `--switch` flags.
struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Flags that take no value.
const SWITCHES: [&str; 7] = [
    "no-cache",
    "no-journal",
    "allow-remote-shutdown",
    "dry-run",
    "journal-gc",
    "resume-force",
    "verify-all",
];

/// The flags each subcommand accepts (anything else is an error).
const DESIGN_FLAGS: &[&str] = &["node", "fs-mhz", "bw-mhz", "slices", "samples", "out"];
const SWEEP_FLAGS: &[&str] = &[
    "nodes",
    "slices",
    "fs-mhz",
    "amps",
    "bw-mhz",
    "kind",
    "samples",
    "seed",
    "workers",
    "retries",
    "cache-dir",
    "no-cache",
    "trace",
    "out",
    // Crash recovery: the write-ahead journal and resume-on-restart.
    "run-id",
    "journal-dir",
    "resume",
    // Resume across an engine change: re-execute everything instead of
    // failing on the journal's fingerprint mismatch.
    "resume-force",
    "no-journal",
    // Distributed dispatch: only meaningful with a backend list in
    // --workers.
    "hedge-ms",
    // Per-job wall-clock budget forwarded to backends as deadline_ms.
    "deadline-ms",
    // Result integrity: sampled redundant verification of remote
    // results (a fraction 0..=1, or --verify-all for every result).
    "verify-sample",
    "verify-all",
    // Journal GC: prune journals of provably-finished runs.
    "journal-gc",
    // Plan preview: print the grid and predicted cache hits, run nothing.
    "dry-run",
    // Hidden: deterministic fault injection for resilience testing.
    // Not listed in `tdsigma help` on purpose.
    "chaos-seed",
];
const OPTIMIZE_FLAGS: &[&str] = &[
    // Search definition: a space file, or inline range flags on top.
    "space",
    "strategy",
    "kind",
    "budget",
    "seed",
    "sndr-floor",
    "samples",
    "population",
    "nodes",
    "slices-range",
    "stages-range",
    "gain-range",
    "rdac-range",
    "fs-mhz",
    "bw-mhz",
    // Execution: same engine knobs as sweep.
    "workers",
    "retries",
    "cache-dir",
    "no-cache",
    "trace",
    "out",
    "run-id",
    "journal-dir",
    "resume",
    "resume-force",
    "no-journal",
    "hedge-ms",
    "deadline-ms",
    "verify-sample",
    "verify-all",
    "dry-run",
    "chaos-seed",
];
const CACHE_FLAGS: &[&str] = &["cache-dir"];
const SERVE_FLAGS: &[&str] = &[
    "addr",
    "workers",
    "retries",
    "cache-dir",
    "no-cache",
    "trace",
    "max-connections",
    "allow-remote-shutdown",
    // Admission control: per-client token buckets and queue-depth shedding.
    "quota-burst",
    "quota-rps",
    "max-queue",
    "chaos-seed",
];
const FLEET_FLAGS: &[&str] = &[
    // Fleet shape.
    "children",
    "workers",
    "retries",
    "cache-dir",
    "no-cache",
    "max-connections",
    // Supervision knobs.
    "restart-max",
    "restart-window-ms",
    "health-interval-ms",
    // Admission knobs forwarded to each serve child.
    "quota-burst",
    "quota-rps",
    "max-queue",
    // Hidden: deterministic fault injection (enables child kills).
    "chaos-seed",
];

fn parse_flags(args: &[String], known: &[&str]) -> Result<Flags, String> {
    let mut flags = Flags {
        values: BTreeMap::new(),
        switches: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {}", args[i]))?;
        if !known.contains(&key) {
            return Err(format!(
                "unknown flag --{key} (supported: {})",
                known
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
        if SWITCHES.contains(&key) {
            flags.switches.push(key.to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.values.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

impl Flags {
    fn f64(&self, key: &str, default: f64) -> Result<f64, String> {
        self.values
            .get(key)
            .map(|v| v.parse::<f64>().map_err(|e| format!("--{key}: {e}")))
            .unwrap_or(Ok(default))
    }

    fn usize(&self, key: &str, default: usize) -> Result<usize, String> {
        self.values
            .get(key)
            .map(|v| v.parse::<usize>().map_err(|e| format!("--{key}: {e}")))
            .unwrap_or(Ok(default))
    }

    fn str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// A comma-separated list of numbers, e.g. `--nodes 40,180`.
    fn f64_list(&self, key: &str, default: &[f64]) -> Result<Vec<f64>, String> {
        match self.values.get(key) {
            None => Ok(default.to_vec()),
            Some(text) => text
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<f64>()
                        .map_err(|e| format!("--{key}: {s:?}: {e}"))
                })
                .collect(),
        }
    }
}

fn run_design(flags: &Flags) -> ExitCode {
    match try_run_design(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_run_design(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let node_nm = flags.f64("node", 40.0)?;
    let fs_hz = flags.f64("fs-mhz", 750.0)? * 1e6;
    let bw_hz = flags.f64("bw-mhz", 5.0)? * 1e6;
    let slices = flags.usize("slices", 8)?;
    let samples = flags.usize("samples", 16_384)?;
    let out = flags.str("out", "results");
    let out = Path::new(&out);
    fs::create_dir_all(out)?;

    let node = NodeId::from_gate_length(node_nm)?;
    let tech = Technology::for_node(node)?;
    let spec = AdcSpec::for_technology(tech, fs_hz, bw_hz)?.with_slices(slices)?;
    println!(
        "designing {} slices at {} — fs {:.0} MHz, BW {:.2} MHz, OSR {:.0}",
        spec.n_slices,
        spec.tech,
        spec.fs_hz / 1e6,
        spec.bw_hz / 1e6,
        spec.oversampling_ratio()
    );

    let outcome = DesignFlow::new(spec.clone()).with_samples(samples).run()?;
    println!("{outcome}");

    // Artifacts.
    fs::write(out.join("adc_top.v"), &outcome.verilog)?;
    let lib = PhysicalLibrary::for_technology(&spec.tech);
    fs::write(out.join("library.lef"), lef::to_lef(&lib))?;
    fs::write(
        out.join("adc_top.fp"),
        outcome.layout.floorplan.to_fp_text(),
    )?;
    fs::write(
        out.join("adc_top.def"),
        lef::to_def(
            &outcome.layout.placement,
            "adc_top",
            outcome.layout.floorplan.die.width(),
            outcome.layout.floorplan.die.height(),
        ),
    )?;
    fs::write(
        out.join("adc_top.gds.txt"),
        gds::to_gds_text(&outcome.layout.placement, &lib, "adc_top"),
    )?;
    fs::write(
        out.join("layout.svg"),
        render::to_svg_with_routes(
            &outcome.layout.floorplan,
            &outcome.layout.placement,
            &outcome.layout.routing,
        ),
    )?;
    let spectrum = outcome.capture.spectrum(tdsigma::dsp::window::Window::Hann);
    let mut csv = String::from("freq_hz,dbfs\n");
    for bin in 1..spectrum.len() {
        csv.push_str(&format!(
            "{},{}\n",
            spectrum.bin_frequency_hz(bin),
            spectrum.dbfs(bin)
        ));
    }
    fs::write(out.join("spectrum.csv"), csv)?;
    fs::write(out.join("report.json"), report_json(&outcome))?;
    println!(
        "wrote adc_top.{{v,fp,def,gds.txt}}, library.lef, layout.svg, spectrum.csv, report.json → {}",
        out.display()
    );
    Ok(())
}

/// `tdsigma cache stats|scrub`: inventory or prune the on-disk result
/// cache against the current engine fingerprint. `stats` only reads;
/// `scrub` removes every artifact the current engine would not replay
/// (foreign fingerprints, unstamped/corrupt suspects, the demoted
/// `stale/` tier and `.quarantine` files) and keeps the fresh ones.
fn run_cache(args: &[String]) -> ExitCode {
    let Some(action) = args.first().map(String::as_str) else {
        eprintln!("usage: tdsigma cache <stats|scrub> [--cache-dir DIR]");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..], CACHE_FLAGS) {
        Ok(flags) => flags,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = flags.str("cache-dir", "results/cache");
    let fingerprint = tdsigma::core::engine_fingerprint();
    let result = match action {
        "stats" => ResultCache::inspect(Path::new(&dir), fingerprint).map(|stats| {
            println!("cache {dir} (engine {fingerprint}):");
            println!("{stats}");
        }),
        "scrub" => ResultCache::scrub(Path::new(&dir), fingerprint).map(|scrub| {
            println!("cache {dir} (engine {fingerprint}): {scrub}");
        }),
        other => {
            eprintln!("unknown cache action {other:?} (expected stats or scrub)");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Fails a `--resume` loudly when the journal was planned by a
/// different engine: its "finished" claims are backed by cache
/// artifacts this binary will demote rather than replay, so silently
/// reconciling against them would mix engines in one artifact.
/// `--resume-force` downgrades the mismatch to a warning and
/// re-executes every job under the current engine.
fn verify_resume_fingerprint(run_id: &str, planned: &str, force: bool) -> Result<(), String> {
    let ours = tdsigma::core::engine_fingerprint();
    if planned.is_empty() {
        eprintln!(
            "warning: journal for {run_id} predates engine fingerprinting; \
             foreign cache artifacts will be demoted, not replayed"
        );
        return Ok(());
    }
    if planned == ours {
        return Ok(());
    }
    if force {
        eprintln!(
            "warning: resuming {run_id} across an engine change \
             ({planned} → {ours}); completed jobs re-execute from scratch"
        );
        return Ok(());
    }
    Err(format!(
        "journal for {run_id} was planned by engine {planned}, but this binary \
         is {ours}: its cached results are not comparable. Start a fresh run, \
         or pass --resume-force to re-execute every job under the current engine"
    ))
}

/// What `--workers` asked for: a local thread count, or a fleet of
/// serve backends (with `local` optionally joining the rotation).
enum WorkerSpec {
    Local(usize),
    Fleet { backends: Vec<String>, local: bool },
}

fn parse_workers(flags: &Flags) -> Result<WorkerSpec, String> {
    let Some(text) = flags.values.get("workers") else {
        return Ok(WorkerSpec::Local(default_workers()));
    };
    if let Ok(n) = text.parse::<usize>() {
        if n == 0 {
            return Err("--workers: need at least 1 worker".into());
        }
        return Ok(WorkerSpec::Local(n));
    }
    let mut backends = Vec::new();
    let mut local = false;
    for part in text.split(',') {
        let part = part.trim();
        if part == "local" {
            local = true;
        } else if part.contains(':') {
            backends.push(part.to_string());
        } else {
            return Err(format!(
                "--workers: {part:?} is neither a thread count, \"local\", nor host:port"
            ));
        }
    }
    if backends.is_empty() {
        return Err("--workers: a backend list needs at least one host:port".into());
    }
    Ok(WorkerSpec::Fleet { backends, local })
}

fn fault_plan(flags: &Flags) -> Result<FaultPlan, String> {
    let mut plan = match flags.values.get("chaos-seed") {
        None => FaultPlan::none(),
        Some(text) => {
            let seed = text
                .parse::<u64>()
                .map_err(|e| format!("--chaos-seed: {e}"))?;
            eprintln!("warning: chaos mode on (seed {seed}) — faults will be injected");
            FaultPlan::chaos(seed)
        }
    };
    // Hidden test hook, mirroring TDSIGMA_FINGERPRINT: arm the
    // lying-backend fault site from the environment. The site only
    // fires in a serve process (it perturbs report values after
    // compute), and it stays out of `chaos` because it silently breaks
    // byte-identity — integration tests arm it on one fleet child to
    // prove sampled verification catches the liar.
    if let Ok(text) = std::env::var("TDSIGMA_LYING_PERMILLE") {
        let permille = text
            .parse::<u16>()
            .map_err(|e| format!("TDSIGMA_LYING_PERMILLE: {e}"))?;
        if permille > 0 {
            plan.lying_backend_permille = permille.min(1000);
            eprintln!(
                "warning: lying-backend fault armed ({} permille) — \
                 report values will be silently corrupted",
                plan.lying_backend_permille
            );
        }
    }
    Ok(plan)
}

/// The `--verify-sample` / `--verify-all` pair as a permille rate for
/// [`DispatchConfig::verify_permille`]. `--verify-sample` takes a
/// fraction in `0..=1`; `--verify-all` pins it to every result.
fn verify_permille(flags: &Flags) -> Result<u16, String> {
    if flags.switch("verify-all") {
        return Ok(1000);
    }
    let fraction = flags.f64("verify-sample", 0.0)?;
    if !(0.0..=1.0).contains(&fraction) {
        return Err(format!(
            "--verify-sample must be a fraction in 0..=1, got {fraction}"
        ));
    }
    Ok((fraction * 1000.0).round() as u16)
}

fn engine_config(flags: &Flags, workers: usize) -> Result<EngineConfig, String> {
    let retries = flags.usize("retries", 1)? as u32;
    let cache_dir = if flags.switch("no-cache") {
        None
    } else {
        Some(flags.str("cache-dir", "results/cache").into())
    };
    Ok(EngineConfig {
        pool: PoolConfig {
            workers,
            retries,
            ..PoolConfig::default()
        },
        cache_dir,
        faults: fault_plan(flags)?,
    })
}

/// Builds the engine `--workers` asked for. With a thread count this is
/// the classic in-process pool; with a backend list the engine's runner
/// becomes a [`Dispatcher`] over the fleet (returned alongside, for the
/// end-of-sweep summary) — journal, cache, resume and metrics machinery
/// are identical either way.
type EngineSetup = (Engine, Option<Arc<Dispatcher>>);

fn engine_from_flags(flags: &Flags) -> Result<EngineSetup, Box<dyn std::error::Error>> {
    match parse_workers(flags)? {
        WorkerSpec::Local(workers) => {
            let engine = Engine::new(engine_config(flags, workers)?)?;
            Ok((engine, None))
        }
        WorkerSpec::Fleet { backends, local } => {
            let config = DispatchConfig {
                backends,
                local_in_rotation: local,
                hedge_ms: flags.usize("hedge-ms", 0)? as u64,
                deadline_ms: flags.usize("deadline-ms", 0)? as u64,
                verify_permille: verify_permille(flags)?,
                faults: fault_plan(flags)?,
                ..DispatchConfig::default()
            };
            let local_runner: Arc<Runner> = Arc::new(execute);
            let dispatcher = Dispatcher::new(&config, local_runner);
            // Startup probe: report each backend, seed the breakers, and
            // size the dispatch pool from the fleet's actual capacity
            // (each pool thread just blocks on one remote call).
            let mut remote_workers = 0usize;
            let ours = tdsigma::core::engine_fingerprint();
            for (addr, health) in dispatcher.probe() {
                match health {
                    // The probe already marked (and warned about) the
                    // version skew; a skewed backend never receives
                    // work, so it must not size the pool either.
                    Some(h) if h.fingerprint != ours => {}
                    Some(h) => {
                        println!(
                            "backend {addr}: {} workers, status {}, up {:.0} s, {} jobs served",
                            h.workers,
                            h.status,
                            h.uptime_ms as f64 / 1e3,
                            h.served_jobs
                        );
                        remote_workers += h.workers;
                    }
                    None => eprintln!("warning: backend {addr} unreachable at startup"),
                }
            }
            let workers = if local {
                remote_workers + default_workers()
            } else {
                remote_workers
            };
            let engine = Engine::with_runner(
                engine_config(flags, workers.clamp(1, 64))?,
                dispatcher.into_runner(),
            )?;
            Ok((engine, Some(dispatcher)))
        }
    }
}

/// Turns on the JSON-lines trace sink if `--trace FILE` was given;
/// returns the path when tracing is active.
fn enable_trace(flags: &Flags) -> Result<Option<String>, Box<dyn std::error::Error>> {
    match flags.values.get("trace") {
        None => Ok(None),
        Some(path) => {
            tdsigma::obs::trace_to_file(path)?;
            Ok(Some(path.clone()))
        }
    }
}

/// Prints the per-stage wall-time table accumulated by the span
/// histograms. Histograms are always on (atomic adds only), so this
/// works with or without `--trace`.
fn print_stage_breakdown() {
    let snap = tdsigma::obs::registry().snapshot();
    let mut rows: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(name, h)| {
            h.count > 0
                && (name.starts_with("flow.")
                    || name.as_str() == "job.attempt"
                    || name.as_str() == "engine.batch")
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    rows.sort_by_key(|(_, h)| std::cmp::Reverse(h.sum_us));
    println!("stage breakdown (wall time summed across workers):");
    println!(
        "  {:<18} {:>7} {:>12} {:>10} {:>10}",
        "stage", "count", "total ms", "mean ms", "max ms"
    );
    for (name, h) in rows {
        println!(
            "  {:<18} {:>7} {:>12.1} {:>10.2} {:>10.1}",
            name,
            h.count,
            h.total_ms(),
            h.mean_ms(),
            h.max_ms()
        );
    }
}

fn run_sweep(flags: &Flags) -> ExitCode {
    match try_run_sweep(flags) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// A fresh run id: unique enough for a journal filename, and valid under
/// the journal's run-id rules.
fn generate_run_id(prefix: &str) -> String {
    let millis = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    format!("{prefix}-{millis}-{}", std::process::id())
}

/// Prints the dry-run plan: what the batch would submit, and what the
/// current cache already answers. Runs nothing, writes nothing.
fn print_dry_run(flags: &Flags, jobs: &[Job]) -> Result<(), Box<dyn std::error::Error>> {
    let cache = if flags.switch("no-cache") {
        None
    } else {
        // Opening the cache read-classifies only; `contains` never
        // parses or quarantines artifacts.
        Some(ResultCache::with_disk(
            flags.str("cache-dir", "results/cache"),
        )?)
    };
    let preview = PlanPreview::of(jobs, cache.as_ref());
    print!("{}", preview.table());
    println!("{}", preview.summary());
    println!("dry run: nothing executed, nothing written");
    Ok(())
}

fn try_run_sweep(flags: &Flags) -> Result<usize, Box<dyn std::error::Error>> {
    let nodes = flags.f64_list("nodes", &[40.0, 180.0])?;
    let slices = flags.f64_list("slices", &[4.0, 8.0])?;
    let fs_list = flags.f64_list("fs-mhz", &[750.0])?;
    let amps = flags.f64_list("amps", &[0.79])?;
    let bw_mhz = flags.f64("bw-mhz", 5.0)?;
    let kind = match flags.str("kind", "sim").as_str() {
        "sim" => JobKind::SimTone,
        "flow" => JobKind::FullFlow,
        other => return Err(format!("--kind must be sim or flow, got {other:?}").into()),
    };
    let samples = flags.usize("samples", 8_192)?;
    let seed = flags.usize("seed", 2017)? as u64;
    let out = flags.str("out", "results");
    let journal_dir = flags.str("journal-dir", "results/journal");
    let trace = enable_trace(flags)?;

    // Resume replaces the grid with the journaled plan; a fresh run
    // builds the grid and (unless --no-journal) opens a new journal.
    // A dry run never touches the journal — it previews the exact job
    // list the real invocation would submit, resumed or fresh.
    let dry_run = flags.switch("dry-run");
    let resume_id = flags.values.get("resume").cloned();
    let (jobs, run_id, mut journal, already_verified) = if let Some(run_id) = resume_id {
        validate_run_id(&run_id)?;
        let replay = Journal::replay(&journal_dir, &run_id)?;
        if replay.torn_tail {
            eprintln!(
                "warning: journal for {run_id} ends in a torn record \
                 (crash mid-append) — replaying the intact prefix"
            );
        }
        if replay.jobs.is_empty() {
            return Err(
                format!("journal for {run_id} holds no batch plan — nothing to resume").into(),
            );
        }
        let complete = replay
            .jobs
            .iter()
            .filter(|j| replay.finished.contains(&j.key()))
            .count();
        println!(
            "resuming run {run_id}: {complete} of {} jobs journaled complete, \
             {} degraded, resume #{}",
            replay.jobs.len(),
            replay.degraded.len(),
            replay.resumes + 1
        );
        if dry_run {
            print_dry_run(flags, &replay.jobs)?;
            return Ok(0);
        }
        verify_resume_fingerprint(&run_id, &replay.fingerprint, flags.switch("resume-force"))?;
        // With --no-cache there is nothing to reconcile completion
        // against: the journal's "finished" claims point at cache
        // artifacts we will not read, so every job re-executes.
        let no_cache = flags.switch("no-cache");
        if no_cache {
            println!(
                "cache disabled: re-executing all {} jobs",
                replay.jobs.len()
            );
        }
        let mut journal = Journal::open_existing(&journal_dir, &run_id)?;
        journal.append(&JournalRecord::Resumed {
            completed: if no_cache { 0 } else { complete as u64 },
        })?;
        (replay.jobs, run_id, Some(journal), replay.verified)
    } else {
        let mut jobs = Vec::new();
        for &node in &nodes {
            for &n_slices in &slices {
                for &fs_mhz in &fs_list {
                    for &amp in &amps {
                        let mut job = match kind {
                            JobKind::SimTone => Job::sim(node, fs_mhz * 1e6, bw_mhz * 1e6),
                            JobKind::FullFlow => Job::flow(node, fs_mhz * 1e6, bw_mhz * 1e6),
                        };
                        job.slices = n_slices as usize;
                        job.amplitude_rel = amp;
                        job.samples = samples;
                        job.seed = seed;
                        jobs.push(job);
                    }
                }
            }
        }
        if dry_run {
            print_dry_run(flags, &jobs)?;
            return Ok(0);
        }
        let run_id = flags.str("run-id", &generate_run_id("sweep"));
        validate_run_id(&run_id)?;
        let journal = if flags.switch("no-journal") {
            None
        } else {
            Some(Journal::create(&journal_dir, &run_id)?)
        };
        (jobs, run_id, journal, Default::default())
    };

    let (engine, dispatcher) = engine_from_flags(flags)?;
    if let Some(dispatcher) = &dispatcher {
        // Journaled verification outcomes survive a crash: a resumed
        // run never re-verifies what an earlier attempt already proved.
        dispatcher.seed_verified(already_verified);
    }
    println!(
        "sweep {run_id}: {} jobs on {} workers (journal: {})",
        jobs.len(),
        engine.workers(),
        journal
            .as_ref()
            .map_or("off".to_string(), |j| j.path().display().to_string()),
    );
    let batch = engine.run_batch_with_journal(&jobs, journal.as_mut())?;
    if let (Some(dispatcher), Some(journal)) = (&dispatcher, journal.as_mut()) {
        for key in dispatcher.drain_verified() {
            journal.append(&JournalRecord::JobVerified { key })?;
        }
    }

    println!("{}", tdsigma::jobs::JobReport::table_header());
    let mut failed = 0usize;
    let mut reports = Vec::new();
    let mut failures = Vec::new();
    for (job, result) in jobs.iter().zip(&batch.results) {
        match result {
            Ok(report) => {
                println!("{}", report.table_row());
                reports.push(report.to_json());
            }
            Err(e) => {
                failed += 1;
                eprintln!(
                    "  FAILED {:.0} nm / {} slices / {:.0} MHz: {e}",
                    job.node_nm,
                    job.slices,
                    job.fs_hz / 1e6
                );
                failures.push(Json::Obj(vec![
                    ("job".into(), job.to_json()),
                    ("error".into(), Json::Str(e.to_string())),
                    ("retryable".into(), Json::Bool(e.is_retryable())),
                ]));
            }
        }
    }
    println!("{}", batch.metrics);
    if let Some(dispatcher) = &dispatcher {
        let summary = dispatcher.summary();
        println!("{summary}");
        if summary.degraded() {
            eprintln!(
                "degraded: {} job(s) ran via local fallback because every backend was unavailable",
                summary.local_fallbacks
            );
        }
    }
    print_stage_breakdown();
    if let Some(path) = trace {
        tdsigma::obs::disable_tracing();
        println!("wrote trace → {path}");
    }

    // The artifact is a pure function of (run id, per-job results), so a
    // resumed run writes bytes identical to an uninterrupted one.
    let artifact = Json::Obj(vec![
        ("run_id".into(), Json::Str(run_id.clone())),
        ("jobs".into(), Json::Num(jobs.len() as f64)),
        ("failed".into(), Json::Num(failed as f64)),
        ("reports".into(), Json::Arr(reports)),
        ("failures".into(), Json::Arr(failures)),
    ]);
    let out = Path::new(&out);
    fs::create_dir_all(out)?;
    let path = out.join("sweep.json");
    fs::write(&path, artifact.to_text() + "\n")?;
    println!(
        "wrote {} reports → {}",
        batch.results.len() - failed,
        path.display()
    );
    if failed > 0 {
        eprintln!(
            "degraded: {failed} of {} jobs failed — resume with: \
             tdsigma sweep --resume {run_id} --journal-dir {journal_dir}",
            jobs.len()
        );
    }

    // Journal GC: an explicit --journal-gc prunes every provably-finished
    // journal; a clean sweep quietly prunes old finished runs but keeps a
    // recent window so `--resume` stays useful. The current run is always
    // protected (it may still be referenced by the degraded hint above).
    // Under --no-cache a clean finish does NOT auto-prune: the journal's
    // completion claims are not backed by cache artifacts, so only an
    // explicit --journal-gc may reconcile them away.
    let gc_requested = flags.switch("journal-gc");
    let auto_gc = failed == 0 && !flags.switch("no-cache");
    if !flags.switch("no-journal") && (gc_requested || auto_gc) {
        let keep = if gc_requested { 0 } else { 32 };
        match gc_finished(Path::new(&journal_dir), keep, &[run_id.as_str()]) {
            Ok(gc) if !gc.pruned.is_empty() => println!(
                "journal gc: pruned {} finished journal(s), {} kept",
                gc.pruned.len(),
                gc.kept
            ),
            Ok(_) => {
                if gc_requested {
                    println!("journal gc: nothing to prune");
                }
            }
            Err(e) => eprintln!("warning: journal gc failed: {e}"),
        }
    }
    Ok(failed)
}

fn run_optimize(flags: &Flags) -> ExitCode {
    match try_run_optimize(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Builds the optimizer config from `--space FILE` (if given) plus the
/// inline range flags, which override the file.
fn optimize_config(flags: &Flags) -> Result<OptConfig, Box<dyn std::error::Error>> {
    let mut space = match flags.values.get("space") {
        None => SearchSpace::default(),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("--space {path}: {e}"))?;
            SearchSpace::from_json(&Json::parse(&text).map_err(|e| format!("--space {path}: {e}"))?)
                .map_err(|e| format!("--space {path}: {e}"))?
        }
    };
    if flags.values.contains_key("nodes") {
        space.nodes = flags.f64_list("nodes", &[])?;
    }
    let range_u = |key: &str, current: (usize, usize)| -> Result<(usize, usize), String> {
        match flags.f64_list(key, &[])?.as_slice() {
            [] => Ok(current),
            [lo, hi] => Ok((*lo as usize, *hi as usize)),
            other => Err(format!(
                "--{key} needs exactly LO,HI (got {} values)",
                other.len()
            )),
        }
    };
    let range_f = |key: &str, current: (f64, f64)| -> Result<(f64, f64), String> {
        match flags.f64_list(key, &[])?.as_slice() {
            [] => Ok(current),
            [lo, hi] => Ok((*lo, *hi)),
            other => Err(format!(
                "--{key} needs exactly LO,HI (got {} values)",
                other.len()
            )),
        }
    };
    space.slices = range_u("slices-range", space.slices)?;
    space.vco_stages = range_u("stages-range", space.vco_stages)?;
    space.loop_gain = range_f("gain-range", space.loop_gain)?;
    space.rdac_ohm = range_f("rdac-range", space.rdac_ohm)?;
    match (
        flags.values.contains_key("fs-mhz"),
        flags.values.contains_key("bw-mhz"),
    ) {
        (true, true) => {
            space.fs_bw_hz = Some((
                flags.f64("fs-mhz", 0.0)? * 1e6,
                flags.f64("bw-mhz", 0.0)? * 1e6,
            ));
        }
        (false, false) => {}
        _ => return Err("--fs-mhz and --bw-mhz must be given together".into()),
    }

    let kind = match flags.str("kind", "flow").as_str() {
        "sim" => JobKind::SimTone,
        "flow" => JobKind::FullFlow,
        other => return Err(format!("--kind must be sim or flow, got {other:?}").into()),
    };
    let defaults = OptConfig::flow(SearchSpace::default());
    let config = OptConfig {
        space,
        strategy: Strategy::parse(&flags.str("strategy", "cma"))?,
        kind,
        budget: flags.usize("budget", defaults.budget)?,
        seed: flags.usize("seed", defaults.seed as usize)? as u64,
        sndr_floor_db: flags.f64("sndr-floor", defaults.sndr_floor_db)?,
        samples: flags.usize(
            "samples",
            match kind {
                JobKind::SimTone => 8_192,
                JobKind::FullFlow => defaults.samples,
            },
        )?,
        population: flags.usize("population", 0)?,
    };
    Ok(config.validated()?)
}

/// Where an optimize run's resume token lives: the config, persisted
/// next to the journal so `--resume ID` can re-run it verbatim.
fn opt_config_path(journal_dir: &str, run_id: &str) -> std::path::PathBuf {
    Path::new(journal_dir).join(format!("{run_id}.opt.json"))
}

fn try_run_optimize(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let out = flags.str("out", "results");
    let journal_dir = flags.str("journal-dir", "results/journal");
    let trace = enable_trace(flags)?;

    // Resume re-runs the persisted config; determinism + the result
    // cache make the re-run skip everything that already finished. A
    // fresh run builds the config from flags and persists it first.
    let resume_id = flags.values.get("resume").cloned();
    let (config, run_id, mut journal, already_verified) = if let Some(run_id) = resume_id {
        validate_run_id(&run_id)?;
        let path = opt_config_path(&journal_dir, &run_id);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("no optimize config for {run_id} at {}: {e}", path.display()))?;
        let config = OptConfig::from_json(&Json::parse(&text)?)?;
        if flags.switch("dry-run") {
            print_dry_run(flags, &initial_jobs(&config)?)?;
            return Ok(());
        }
        let replay = Journal::replay(&journal_dir, &run_id)?;
        verify_resume_fingerprint(&run_id, &replay.fingerprint, flags.switch("resume-force"))?;
        println!(
            "resuming optimize {run_id}: {} evaluation(s) journaled complete, resume #{}",
            replay.finished.len(),
            replay.resumes + 1
        );
        let no_cache = flags.switch("no-cache");
        if no_cache {
            println!("cache disabled: re-executing every evaluation");
        }
        let mut journal = Journal::open_existing(&journal_dir, &run_id)?;
        journal.append(&JournalRecord::Resumed {
            completed: if no_cache {
                0
            } else {
                replay.finished.len() as u64
            },
        })?;
        (config, run_id, Some(journal), replay.verified)
    } else {
        let config = optimize_config(flags)?;
        if flags.switch("dry-run") {
            let first = initial_jobs(&config)?;
            println!(
                "optimize plan: strategy {}, budget {} evaluation(s); generation 0 below \
                 (later generations adapt to results)",
                config.strategy.as_str(),
                config.budget
            );
            print_dry_run(flags, &first)?;
            return Ok(());
        }
        let run_id = flags.str("run-id", &generate_run_id("opt"));
        validate_run_id(&run_id)?;
        let journal = if flags.switch("no-journal") {
            None
        } else {
            fs::create_dir_all(&journal_dir)?;
            fs::write(
                opt_config_path(&journal_dir, &run_id),
                config.to_json().to_text() + "\n",
            )?;
            Some(Journal::create(&journal_dir, &run_id)?)
        };
        (config, run_id, journal, Default::default())
    };

    let (engine, dispatcher) = engine_from_flags(flags)?;
    if let Some(dispatcher) = &dispatcher {
        dispatcher.seed_verified(already_verified);
    }
    println!(
        "optimize {run_id}: strategy {}, kind {}, budget {} on {} workers (journal: {})",
        config.strategy.as_str(),
        config.kind.as_str(),
        config.budget,
        engine.workers(),
        journal
            .as_ref()
            .map_or("off".to_string(), |j| j.path().display().to_string()),
    );

    // The evaluation closure IS the jobs engine: every generation is an
    // ordinary journaled batch, so caching, dedup, fleet dispatch and
    // crash recovery apply to optimizer traffic unchanged.
    let verify_dispatcher = dispatcher.clone();
    let mut eval = |jobs: &[Job]| {
        let batch = engine.run_batch_with_journal(jobs, journal.as_mut())?;
        if let (Some(dispatcher), Some(journal)) = (&verify_dispatcher, journal.as_mut()) {
            for key in dispatcher.drain_verified() {
                journal.append(&JournalRecord::JobVerified { key })?;
            }
        }
        tdsigma::obs::counter("opt.cache_hits").add(batch.metrics.cache_hits as u64);
        println!(
            "  generation: {} job(s), {} cache hit(s), {} executed, {} failed",
            jobs.len(),
            batch.metrics.cache_hits,
            batch.metrics.executed,
            batch.metrics.failed
        );
        Ok(batch.results)
    };
    let report = optimize(&config, &mut eval)?;

    let best = &report.best;
    println!(
        "best after {} evaluation(s) ({} improvement(s)):",
        report.evals, report.improvements
    );
    println!(
        "  {:.0} nm, {} slices, {} stages, gain {:.3}, rdac {:.0} Ω",
        best.candidate.node_nm,
        best.candidate.slices,
        best.candidate.vco_stages,
        best.candidate.loop_gain,
        best.candidate.rdac_ohm
    );
    println!("{}", tdsigma::jobs::JobReport::table_header());
    println!("{}", best.report.table_row());
    if let Some(dispatcher) = &dispatcher {
        println!("{}", dispatcher.summary());
    }
    print_stage_breakdown();
    if let Some(path) = trace {
        tdsigma::obs::disable_tracing();
        println!("wrote trace → {path}");
    }

    // Like sweep.json, the artifact is a pure function of (run id,
    // config, results): a resumed run writes bytes identical to an
    // uninterrupted one.
    let artifact = match report.to_json() {
        Json::Obj(mut fields) => {
            fields.insert(0, ("run_id".into(), Json::Str(run_id.clone())));
            Json::Obj(fields)
        }
        other => other,
    };
    let out = Path::new(&out);
    fs::create_dir_all(out)?;
    let path = out.join("optimize.json");
    fs::write(&path, artifact.to_text() + "\n")?;
    println!("wrote optimization history → {}", path.display());
    Ok(())
}

fn run_serve(flags: &Flags) -> ExitCode {
    match try_run_serve(flags) {
        // Exit code reflects degradation: a serve session that saw job
        // failures exits non-zero even though it drained gracefully.
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_run_serve(flags: &Flags) -> Result<usize, Box<dyn std::error::Error>> {
    let addr = flags.str("addr", "127.0.0.1:4017");
    let trace = enable_trace(flags)?;
    let (engine, dispatcher) = engine_from_flags(flags)?;
    if dispatcher.is_some() {
        return Err("serve takes a numeric --workers (a backend cannot itself dispatch)".into());
    }
    let engine = Arc::new(engine);
    let defaults = ServerConfig::default();
    let server_config = ServerConfig {
        max_connections: flags.usize("max-connections", defaults.max_connections)?,
        allow_remote_shutdown: flags.switch("allow-remote-shutdown"),
        quota_burst: flags.usize("quota-burst", defaults.quota_burst as usize)? as u32,
        quota_refill_per_sec: flags.f64("quota-rps", defaults.quota_refill_per_sec)?,
        max_queue_per_worker: flags.usize("max-queue", defaults.max_queue_per_worker)?,
        ..ServerConfig::default()
    };
    let max_connections = server_config.max_connections;
    let allow_remote_shutdown = server_config.allow_remote_shutdown;
    let quota_burst = server_config.quota_burst;
    let quota_refill_per_sec = server_config.quota_refill_per_sec;
    let max_queue_per_worker = server_config.max_queue_per_worker;
    let server = Server::bind_with(addr.as_str(), Arc::clone(&engine), server_config)?;
    println!(
        "tdsigma serve: listening on {} ({} workers, cache: {}, max {} connections)",
        server.local_addr()?,
        engine.workers(),
        engine
            .cache()
            .disk_dir()
            .map_or("memory only".to_string(), |d| d.display().to_string()),
        max_connections,
    );
    println!("protocol: one JSON job request per line, one JSON report per line back");
    println!(r#"example: {{"kind":"sim","node":40,"fs_mhz":750,"bw_mhz":5,"seed":1}}"#);
    println!(r#"supervision: {{"cmd":"health"}} and {{"cmd":"ready"}} report liveness"#);
    match (quota_burst, max_queue_per_worker) {
        (0, 0) => println!("admission: open (no per-client quota, no queue cap)"),
        (burst, cap) => println!(
            "admission: quota {} (burst {burst}), queue cap {}",
            if burst == 0 {
                "off".to_string()
            } else {
                format!("{quota_refill_per_sec:.1}/s per client")
            },
            if cap == 0 {
                "off".to_string()
            } else {
                format!("{cap} per worker")
            },
        ),
    }
    if allow_remote_shutdown {
        println!("remote shutdown: ENABLED (any client can stop this server)");
    } else {
        println!("remote shutdown: disabled (start with --allow-remote-shutdown to enable)");
    }
    server.run()?;
    // Graceful drain: in-flight jobs finish, queued work is cancelled,
    // worker threads are joined before we report totals.
    engine.shutdown();
    let totals = engine.totals();
    println!(
        "served {} jobs ({} cache hits, {} executed, {} failed)",
        totals.jobs, totals.cache_hits, totals.executed, totals.failed
    );
    print_stage_breakdown();
    if let Some(path) = trace {
        tdsigma::obs::disable_tracing();
        println!("wrote trace → {path}");
    }
    Ok(totals.failed)
}

fn run_fleet(flags: &Flags) -> ExitCode {
    match try_run_fleet(flags) {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Spawns and supervises N `tdsigma serve` children, restarting crashed
/// or stalled ones with deterministic-jitter backoff. Blocks until
/// SIGTERM/SIGINT, then drains the fleet gracefully.
fn try_run_fleet(flags: &Flags) -> Result<i32, Box<dyn std::error::Error>> {
    let children = flags.usize("children", 2)?;
    if children == 0 {
        return Err("--children must be at least 1".into());
    }
    let workers = flags.usize("workers", default_workers().min(4))?;
    let program = std::env::current_exe()?
        .to_str()
        .ok_or("fleet: executable path is not valid UTF-8")?
        .to_string();

    // Each child is a full serve process on its own pre-picked address;
    // {addr} is substituted by the supervisor. Remote shutdown is on so
    // the supervisor's rolling drain can stop children over the wire.
    let mut child_args = vec![
        "serve".to_string(),
        "--addr".to_string(),
        "{addr}".to_string(),
        "--workers".to_string(),
        workers.to_string(),
        "--allow-remote-shutdown".to_string(),
    ];
    if flags.switch("no-cache") {
        child_args.push("--no-cache".to_string());
    } else if let Some(dir) = flags.values.get("cache-dir") {
        child_args.push("--cache-dir".to_string());
        child_args.push(dir.clone());
    }
    for key in [
        "retries",
        "max-connections",
        "quota-burst",
        "quota-rps",
        "max-queue",
    ] {
        if let Some(value) = flags.values.get(key) {
            child_args.push(format!("--{key}"));
            child_args.push(value.clone());
        }
    }

    // Chaos: the shared plan leaves child kills off (killing processes
    // is the supervisor's business, not the engine's); a fleet run with
    // a chaos seed opts in so restarts actually get exercised.
    let mut faults = fault_plan(flags)?;
    if !faults.is_empty() {
        faults.child_kill_permille = 150;
    }

    let defaults = FleetConfig::default();
    let config = FleetConfig {
        program,
        child_args,
        children,
        max_restarts: flags.usize("restart-max", defaults.max_restarts as usize)? as u32,
        restart_window_ms: flags.usize("restart-window-ms", defaults.restart_window_ms as usize)?
            as u64,
        health_interval_ms: flags
            .usize("health-interval-ms", defaults.health_interval_ms as usize)?
            as u64,
        faults,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::spawn(config)?;
    println!(
        "tdsigma fleet: {} child(ren) serving on {}",
        children,
        fleet.addrs().join(","),
    );
    println!("fleet: send SIGTERM (or Ctrl-C) for a graceful rolling drain");
    let stop = install_stop_handler();
    Ok(fleet.run(stop))
}

/// Hand-rolled JSON (flat object, numeric fields) — no serialization
/// dependency needed for a report this small.
fn report_json(outcome: &tdsigma::core::flow::FlowOutcome) -> String {
    let r = &outcome.report;
    let fields: Vec<(&str, f64)> = vec![
        ("node_nm", r.node.gate_length().value()),
        ("fs_mhz", r.fs_mhz),
        ("bw_mhz", r.bw_mhz),
        ("sndr_db", r.sndr_db),
        ("enob", r.enob),
        ("power_mw", r.power_mw),
        ("digital_fraction", r.digital_fraction),
        ("area_mm2", r.area_mm2),
        ("fom_fj_per_conv", r.fom_fj),
        ("timing_slack_ps", outcome.timing.slack_ps()),
        (
            "wirelength_um",
            outcome.layout.routing.total_wirelength_nm as f64 / 1e3,
        ),
        ("cells", outcome.layout.placement.len() as f64),
    ];
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    format!("{{\n{}\n}}\n", body.join(",\n"))
}
